"""Tests for Chrome-trace export (runtime/trace.py)."""

import json

from repro.compilers import XLACompiler
from repro.core import AStitchCompiler
from repro.runtime.engine import Engine
from repro.runtime.trace import (
    profile_to_chrome_trace,
    write_chrome_trace,
)
from repro.workloads import micro


def _profile(compiler=None, rows=256, cols=64):
    compiler = compiler or AStitchCompiler()
    module = compiler.compile(micro.softmax_graph(rows, cols))
    return Engine().run(module)


class TestTrackAssignment:
    def test_kernels_and_overhead_split_tracks(self):
        trace = profile_to_chrome_trace(_profile())
        by_cat = {}
        for event in trace["traceEvents"]:
            by_cat.setdefault(event["cat"], set()).add(event["tid"])
        # Host overhead on track 0; GPU work on track 1.
        assert by_cat["overhead"] == {0}
        assert by_cat["mem"] == {1}

    def test_compute_shares_gpu_track_and_memcpy_is_host_only(self):
        # XLA modules carry library calls and memcpys alongside kernels.
        profile = _profile(XLACompiler())
        trace = profile_to_chrome_trace(profile)
        tids = {(e["cat"], e["tid"]) for e in trace["traceEvents"]}
        categories = {cat for cat, _ in tids}
        if "compute" in categories:
            assert ("compute", 1) in tids
        # Memcpys are pure overhead (zero device duration): they show
        # up as dispatch events on the host track, never on track 2.
        assert profile.memcpy_count > 0
        assert "memcpy" not in categories
        dispatch_names = {e["name"] for e in trace["traceEvents"]
                          if e["cat"] == "overhead"}
        memcpy_steps = [s for s in profile.steps
                        if s.category == "memcpy"]
        assert all(f"dispatch {s.name}" in dispatch_names
                   for s in memcpy_steps)

    def test_every_step_is_a_complete_event(self):
        trace = profile_to_chrome_trace(_profile())
        assert trace["traceEvents"]
        assert all(e["ph"] == "X" for e in trace["traceEvents"])


class TestTimestamps:
    def test_timestamps_are_cumulative_and_non_overlapping(self):
        trace = profile_to_chrome_trace(_profile())
        cursor = 0.0
        for event in trace["traceEvents"]:
            assert event["ts"] >= cursor - 1e-9
            cursor = event["ts"] + event["dur"]

    def test_total_duration_matches_profile(self):
        profile = _profile()
        trace = profile_to_chrome_trace(profile)
        last = trace["traceEvents"][-1]
        end_us = last["ts"] + last["dur"]
        assert abs(end_us - profile.total_time * 1e6) < 1e-3
        assert trace["otherData"]["total_ms"] == \
            round(profile.total_time * 1e3, 4)

    def test_overhead_precedes_its_kernel(self):
        trace = profile_to_chrome_trace(_profile())
        events = trace["traceEvents"]
        for dispatch, kernel in zip(events, events[1:]):
            if dispatch["cat"] == "overhead" and kernel["cat"] == "mem":
                assert kernel["name"] in dispatch["name"]
                assert dispatch["ts"] + dispatch["dur"] <= \
                    kernel["ts"] + 1e-9


class TestCounterArgs:
    def test_counter_args_round_trip_through_json(self):
        profile = _profile()
        trace = profile_to_chrome_trace(profile)
        decoded = json.loads(json.dumps(trace))
        kernel_events = [e for e in decoded["traceEvents"]
                         if e["cat"] == "mem"]
        assert kernel_events
        counters = profile.mem_counters()
        assert len(kernel_events) == len(counters)
        for event, counter in zip(kernel_events, counters):
            args = event["args"]
            assert args["achieved_occupancy"] == \
                round(counter.achieved_occupancy, 3)
            assert args["sm_efficiency"] == \
                round(counter.sm_efficiency, 3)
            assert args["dram_read_transactions"] == \
                counter.dram_read_transactions
            assert args["dram_write_transactions"] == \
                counter.dram_write_transactions

    def test_write_chrome_trace_is_loadable_json(self, tmp_path):
        profile = _profile()
        path = tmp_path / "trace.json"
        write_chrome_trace(profile, str(path))
        decoded = json.loads(path.read_text())
        assert decoded["displayTimeUnit"] == "ns"
        assert decoded["otherData"]["graph"] == profile.graph_name
        assert len(decoded["traceEvents"]) >= profile.mem_kernel_count
