"""Tests for the graph optimization passes."""

import numpy as np
import pytest
from hypothesis import given, settings

from repro.ir.builder import GraphBuilder
from repro.ir.graph import constant_value
from repro.ir.interpreter import evaluate, random_feeds
from repro.ir.ops import OpKind
from repro.ir.passes import (
    algebraic_simplification,
    common_subexpression_elimination,
    constant_folding,
    dead_code_elimination,
    optimize,
)

from tests.test_property_compilers import random_graphs


class TestDeadCodeElimination:
    def test_removes_unused_chain(self):
        b = GraphBuilder()
        x = b.parameter("x", (8,))
        live = b.tanh(x)
        dead = b.exp(b.log(x))  # noqa: F841 — intentionally dead
        b.output(live)
        graph = b.build()
        optimized, removed = dead_code_elimination(graph)
        assert removed == 2
        assert len(optimized) == len(graph) - 2

    def test_keeps_parameters(self):
        b = GraphBuilder()
        x = b.parameter("x", (8,))
        unused = b.parameter("unused", (8,))
        b.output(b.tanh(x))
        optimized, _ = dead_code_elimination(b.build())
        assert len(optimized.parameters) == 2

    def test_noop_returns_same_graph(self):
        b = GraphBuilder()
        x = b.parameter("x", (8,))
        b.output(b.tanh(x))
        graph = b.build()
        optimized, removed = dead_code_elimination(graph)
        assert removed == 0
        assert optimized is graph


class TestCse:
    def test_merges_identical_subtrees(self):
        b = GraphBuilder()
        x = b.parameter("x", (8,))
        a = b.tanh(x)
        c = b.tanh(x)
        b.output(b.add(a, c))
        optimized, merged = common_subexpression_elimination(b.build())
        assert merged == 1
        tanh_count = sum(1 for n in optimized
                         if n.kind is OpKind.TANH)
        assert tanh_count == 1

    def test_respects_attrs(self):
        b = GraphBuilder()
        x = b.parameter("x", (4, 8))
        r1 = b.reduce_sum(x, axes=(0,))
        r2 = b.reduce_sum(x, axes=(1,))
        b.output(b.reduce_sum(b.broadcast_rows(r2, (8, 4))
                              if False else r1, axes=(0,)))
        b.output(r2)
        optimized, merged = common_subexpression_elimination(b.build())
        assert merged == 0

    def test_cascading_merge(self):
        b = GraphBuilder()
        x = b.parameter("x", (8,))
        left = b.exp(b.tanh(x))
        right = b.exp(b.tanh(x))
        b.output(b.add(left, right))
        optimized, merged = common_subexpression_elimination(b.build())
        assert merged == 2


class TestConstantFolding:
    def test_folds_constant_arithmetic(self):
        b = GraphBuilder()
        one = b.constant(1.0, (4,))
        two = b.constant(2.0, (4,))
        folded_src = b.add(one, two)
        x = b.parameter("x", (4,))
        b.output(b.multiply(x, folded_src))
        optimized, folded = constant_folding(b.build())
        assert folded == 1
        const = next(n for n in optimized if n.kind is OpKind.CONSTANT
                     and n.name.startswith("folded"))
        np.testing.assert_allclose(constant_value(const), 3.0)

    def test_leaves_parameter_dependent_ops_alone(self):
        b = GraphBuilder()
        x = b.parameter("x", (4,))
        b.output(b.add_scalar(x, 1.0))
        graph = b.build()
        optimized, _ = constant_folding(graph)
        # The broadcast constant may fold, but the add depends on the
        # parameter and must survive.
        assert any(n.kind is OpKind.ADD for n in optimized)

    def test_folds_through_broadcast(self):
        b = GraphBuilder()
        c = b.constant(2.0, ())
        spread = b.broadcast(c, (4, 4), dims=())
        x = b.parameter("x", (4, 4))
        b.output(b.add(x, spread))
        optimized, folded = constant_folding(b.build())
        assert folded == 1  # the broadcast folds into one constant


class TestAlgebraicSimplification:
    def _roundtrip(self, build_fn):
        b = GraphBuilder()
        x = b.parameter("x", (8,))
        # Keep the rewrite target interior: output nodes are never
        # rewritten away (module-signature stability).
        b.output(b.tanh(build_fn(b, x)))
        graph = b.build()
        optimized, rewrites = algebraic_simplification(graph)
        feeds = random_feeds(graph, seed=3)
        want = evaluate(graph, feeds)
        got = evaluate(optimized, feeds)
        out_name = graph.outputs[0].name
        opt_name = optimized.outputs[0].name
        np.testing.assert_allclose(got[opt_name], want[out_name],
                                   rtol=1e-6)
        return rewrites

    def test_add_zero(self):
        assert self._roundtrip(lambda b, x: b.add_scalar(x, 0.0)) == 1

    def test_mul_one(self):
        assert self._roundtrip(lambda b, x: b.mul_scalar(x, 1.0)) == 1

    def test_div_one(self):
        assert self._roundtrip(
            lambda b, x: b.divide(x, b.scalar_like(1.0, x))) == 1

    def test_double_negate(self):
        assert self._roundtrip(
            lambda b, x: b.negate(b.negate(x))) >= 1

    def test_identity_reshape(self):
        assert self._roundtrip(lambda b, x: b.reshape(x, (8,))) == 1

    def test_identity_transpose(self):
        b = GraphBuilder()
        x = b.parameter("x", (4, 8))
        b.output(b.tanh(b.transpose(x, (0, 1))))
        _, rewrites = algebraic_simplification(b.build())
        assert rewrites == 1

    def test_reshape_of_reshape(self):
        b = GraphBuilder()
        x = b.parameter("x", (4, 8))
        b.output(b.tanh(b.reshape(b.reshape(x, (32,)), (8, 4))))
        # The rewrite bypasses the inner reshape; DCE (in the standard
        # pipeline) then removes it.
        optimized, _ = optimize(b.build())
        reshapes = [n for n in optimized if n.kind is OpKind.RESHAPE]
        assert len(reshapes) == 1


class TestPipeline:
    def test_fixpoint_composition(self):
        # x*1 + 0 with a dead branch and a duplicate subtree: every pass
        # fires, and the result is just tanh(x) twice merged.
        b = GraphBuilder()
        x = b.parameter("x", (16,))
        noisy = b.add_scalar(b.mul_scalar(x, 1.0), 0.0)
        dup1 = b.tanh(noisy)
        dup2 = b.tanh(b.add_scalar(x, 0.0))
        b.exp(x)  # dead
        b.output(b.add(dup1, dup2))
        graph = b.build()
        optimized, report = optimize(graph)
        assert report.total_changes >= 4
        assert len(optimized) < len(graph)
        tanh_count = sum(1 for n in optimized if n.kind is OpKind.TANH)
        assert tanh_count == 1

    def test_report_counts(self):
        b = GraphBuilder()
        x = b.parameter("x", (4,))
        b.output(b.tanh(b.add_scalar(x, 0.0)))
        _, report = optimize(b.build())
        assert report.changes["algebraic_simplification"] >= 1
        assert report.iterations >= 1

    @given(random_graphs())
    @settings(max_examples=30, deadline=None)
    def test_optimize_preserves_numerics(self, graph):
        optimized, _ = optimize(graph)
        feeds = random_feeds(graph, seed=11, scale=0.5)
        want = evaluate(graph, feeds)
        got = evaluate(optimized, feeds)
        # Output names are the execution interface and survive
        # optimization, so results compare key by key.
        assert set(got) == set(want)
        for key, value in want.items():
            np.testing.assert_allclose(got[key], value,
                                       rtol=1e-3, atol=1e-4)

    @given(random_graphs())
    @settings(max_examples=20, deadline=None)
    def test_optimize_never_grows(self, graph):
        optimized, _ = optimize(graph)
        assert len(optimized) <= len(graph)


class TestInterfaceNames:
    """Optimization must not rename the execution interface: feeds and
    results are keyed by parameter/output names, and the graph
    fingerprint (hence the compile cache) hashes them."""

    def test_cse_keeps_late_output_name(self):
        # Five duplicate tanh chains; the *last* duplicate is the
        # output.  CSE keeps the output node but the rebuild used to
        # renumber it down (tanh.4 -> tanh), silently changing the
        # result key.
        b = GraphBuilder()
        x = b.parameter("x", (8,))
        last = None
        for _ in range(5):
            last = b.tanh(x)
        b.output(last)
        graph = b.build()
        assert graph.outputs[0].name == "tanh.4"
        optimized, _ = optimize(graph)
        assert [n.name for n in optimized.outputs] == ["tanh.4"]
        feeds = random_feeds(graph, seed=3)
        assert set(evaluate(optimized, feeds)) == {"tanh.4"}

    def test_multiple_outputs_keep_distinct_names(self):
        # Sorted-by-name pairing of results must stay stable even when
        # dead duplicates between the outputs disappear.
        b = GraphBuilder()
        x0 = b.parameter("x0", (4,))
        x1 = b.parameter("x1", (4,))
        for _ in range(9):
            b.tanh(x0)  # dead duplicates push the suffix to .9
        b.output(b.tanh(x0))
        b.output(b.tanh(x1))
        graph = b.build()
        names = [n.name for n in graph.outputs]
        assert names == ["tanh.9", "tanh.10"]
        optimized, _ = optimize(graph)
        assert [n.name for n in optimized.outputs] == names
        feeds = random_feeds(graph, seed=4)
        want = evaluate(graph, feeds)
        got = evaluate(optimized, feeds)
        for key, value in want.items():
            np.testing.assert_allclose(got[key], value, rtol=1e-6)

    def test_dotted_parameter_name_survives(self):
        # The rebuild names clones from the stem before the first dot;
        # a parameter named like "w.1" must not collapse to "w".
        b = GraphBuilder()
        w = b.parameter("w.1", (4,))
        b.tanh(w)  # dead, forces a DCE rebuild
        b.output(b.add(b.tanh(w), b.tanh(w)))
        graph = b.build()
        optimized, _ = optimize(graph)
        assert "w.1" in {n.name for n in optimized.parameters}
        feeds = {"w.1": np.ones(4, dtype=np.float32)}
        evaluate(optimized, feeds)  # feed keys still resolve

    def test_squatter_clone_is_evicted(self):
        # A surviving non-output clone can land on the output's
        # original name; it must be moved aside, not the output.
        b = GraphBuilder()
        x = b.parameter("x", (8,))
        kept = b.tanh(b.exp(x))        # tanh
        b.tanh(x)                      # tanh.1, dead
        out = b.tanh(b.abs(kept))      # tanh.2 -> clone would be tanh.1
        b.output(out)
        b.output(kept)
        graph = b.build()
        assert out.name == "tanh.2"
        optimized, _ = optimize(graph)
        assert [n.name for n in optimized.outputs] == ["tanh.2", "tanh"]
        assert len({n.name for n in optimized.nodes}) == len(
            optimized.nodes)
