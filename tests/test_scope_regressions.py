"""Regression tests for scope identification — the exact step-cycle
scenarios the property fuzzer found, pinned as unit tests."""

import numpy as np
import pytest

from repro.core import AStitchCompiler
from repro.core.scope import _component_levels, identify_stitch_scopes
from repro.ir.builder import GraphBuilder
from repro.ir.interpreter import evaluate, random_feeds
from repro.ir import patterns


def sandwich_graph():
    """The fuzzer's counterexample shape.

    Scope A (tanh) feeds scope S (add) while S's sibling value
    (broadcast) feeds, through a library call, scope B (tanh.7).  No
    graph path joins A and B, but merging them deadlocks: the merged
    kernel must run before S (it produces tanh for S) and after dot.1
    (which transitively needs S's broadcast).
    """
    b = GraphBuilder("sandwich")
    x0 = b.parameter("x0", (2, 3))
    w0 = b.parameter("w0", (3, 3))
    w1 = b.parameter("w1", (3, 3))
    d0 = b.dot(x0, w0)
    reduce0 = b.reduce_sum(d0, axes=(0,))
    spread = b.broadcast(reduce0, (2, 3), dims=(1,))
    a_value = b.tanh(x0)                       # scope A
    s_value = b.add(spread, a_value)           # scope S (consumes A)
    b.output(s_value)
    d1 = b.dot(spread, w1)                     # library between S and B
    b_value = b.tanh(d1)                       # scope B
    b.output(b_value)
    return b.build(), (a_value, s_value, b_value)


def mutual_groups_graph():
    """Two pairwise-legal merges that would deadlock each other.

    A -> S and T -> B, with {A,B} and {S,T} each pairwise unordered:
    merging both pairs creates a cycle between the merged kernels.
    """
    b = GraphBuilder("mutual")
    x = b.parameter("x", (4, 4))
    w = b.parameter("w", (4, 4))
    a = b.tanh(x)                   # A (depth 0)
    s = b.exp(b.dot(a, w))          # S (depth 1, consumes A)
    b.output(s)
    t = b.sigmoid(x)                # T (depth 0)
    bb = b.relu(b.dot(t, w))        # B (depth 1, consumes T)
    b.output(bb)
    return b.build()


class TestSandwichRegression:
    def test_compiles_and_orders(self):
        graph, _ = sandwich_graph()
        module = AStitchCompiler().compile(graph)  # raised before fix
        feeds = random_feeds(graph, seed=1)
        got = module.execute(feeds)
        want = evaluate(graph, feeds)
        for key in want:
            np.testing.assert_allclose(got[key], want[key], rtol=1e-4,
                                       atol=1e-5)

    def test_a_and_b_not_merged(self):
        graph, (a_value, _, b_value) = sandwich_graph()
        scopes = identify_stitch_scopes(graph, remote_stitching=True)
        owner = {}
        for scope in scopes:
            for node in scope.nodes:
                owner[node] = scope.scope_id
        assert owner[a_value] != owner[b_value]

    def test_levels_order_the_sandwich(self):
        graph, (a_value, s_value, b_value) = sandwich_graph()
        components = []
        from repro.core.scope import _library_depth
        depth = _library_depth(graph)
        for component in patterns.memory_intensive_components(graph):
            by_depth = {}
            for node in component:
                by_depth.setdefault(depth[node], []).append(node)
            components.extend(by_depth.values())
        levels = _component_levels(graph, components)

        def level_of(node):
            for idx, comp in enumerate(components):
                if node in comp:
                    return levels[idx]
            raise AssertionError(node)

        # The float-down pass legally pulls A into S's component (their
        # merge is safe); what must hold is that B sits at a strictly
        # greater level than both — the library call between them orders
        # the atomic components.
        assert level_of(a_value) <= level_of(s_value)
        assert level_of(s_value) < level_of(b_value)


class TestMutualGroupsRegression:
    def test_compiles_and_orders(self):
        graph = mutual_groups_graph()
        module = AStitchCompiler().compile(graph)
        feeds = random_feeds(graph, seed=2)
        got = module.execute(feeds)
        want = evaluate(graph, feeds)
        for key in want:
            np.testing.assert_allclose(got[key], want[key], rtol=1e-4,
                                       atol=1e-5)

    def test_same_level_components_do_merge(self):
        # A and T (both level 0) merge; S and B (both level 1) merge.
        graph = mutual_groups_graph()
        scopes = identify_stitch_scopes(graph, remote_stitching=True)
        assert len(scopes) == 2
        sizes = sorted(len(s) for s in scopes)
        assert sizes == [2, 2]
