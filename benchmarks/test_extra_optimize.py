"""Extension: the retained simplification pipeline before stitching.

Sec 5: AStitch "retains all the optimizations of XLA except fusion
strategies and code generation".  This bench runs the retained layer
(DCE / CSE / constant folding / algebraic rules) ahead of every
compiler on the workloads and checks it never hurts — and that the
workload generators don't secretly rely on dead or duplicate work.
"""

from benchmarks.conftest import compile_cached, save_report
from repro.analysis import render_table
from repro.core import AStitchCompiler
from repro.ir.passes import optimize
from repro.runtime import Engine
from repro.workloads import WORKLOADS, build


def _study():
    engine = Engine()
    out = {}
    for name in WORKLOADS:
        graph = build(name)
        optimized, report = optimize(graph)
        plain = engine.run(compile_cached(AStitchCompiler(), graph))
        tuned = engine.run(compile_cached(AStitchCompiler(), optimized))
        out[name] = (len(graph), len(optimized), report.total_changes,
                     plain.total_time, tuned.total_time)
    return out


def test_extra_optimize_pipeline(benchmark):
    data = benchmark.pedantic(_study, rounds=1, iterations=1)
    rows = []
    for name, (before, after, changes, t_plain, t_tuned) in data.items():
        rows.append([name, before, after, changes,
                     f"{t_plain*1e3:.2f}", f"{t_tuned*1e3:.2f}"])
    save_report("extra_optimize_pipeline", render_table(
        ["model", "nodes", "after passes", "rewrites",
         "AStitch (ms)", "AStitch+passes (ms)"], rows,
        title="Retained XLA-style simplifications before stitching "
              "(Sec 5)"))

    for name, (before, after, changes, t_plain, t_tuned) in data.items():
        assert after <= before, name
        assert t_tuned <= t_plain * 1.05, name
