"""Sec 6.2: the Ansor (TVM auto-scheduler) case study on BERT inference.

Paper: AStitch 31.75 ms vs Ansor 42.02 ms end to end (1.3x); AStitch
forms 53% fewer memory-intensive kernels, runs all memory-intensive
computation 1.4x faster, and moves ~40% fewer total off-chip
transactions (Ansor 49.8M reads / 47.3M writes vs AStitch 33.0M / 28.4M).
"""

from benchmarks.conftest import compile_cached, save_report
from repro.analysis import render_table
from repro.compilers import AnsorCompiler
from repro.core import AStitchCompiler
from repro.runtime import Engine
from repro.workloads import build


def _case_study():
    graph = build("BERT")
    engine = Engine()
    return {
        "Ansor": engine.run(compile_cached(AnsorCompiler(), graph)),
        "AStitch": engine.run(compile_cached(AStitchCompiler(), graph)),
    }


def test_sec62_ansor_case_study(benchmark):
    profiles = benchmark.pedantic(_case_study, rounds=1, iterations=1)
    ansor, astitch = profiles["Ansor"], profiles["AStitch"]
    a_cnt = ansor.aggregate_mem_counters()
    s_cnt = astitch.aggregate_mem_counters()

    speedup = ansor.total_time / astitch.total_time
    kernel_saving = 1 - astitch.mem_kernel_count / ansor.mem_kernel_count
    mem_speedup = ansor.mem_time / astitch.mem_time
    traffic_saving = 1 - (s_cnt.dram_total_transactions
                          / a_cnt.dram_total_transactions)

    rows = [
        ["end-to-end time (ms)", f"{ansor.total_time*1e3:.2f}",
         f"{astitch.total_time*1e3:.2f}",
         f"{speedup:.2f}x (paper 1.3x)"],
        ["MEM kernels", ansor.mem_kernel_count,
         astitch.mem_kernel_count,
         f"{kernel_saving:.0%} fewer (paper 53%)"],
        ["MEM time (ms)", f"{ansor.mem_time*1e3:.2f}",
         f"{astitch.mem_time*1e3:.2f}",
         f"{mem_speedup:.2f}x (paper 1.4x)"],
        ["DRAM reads", f"{a_cnt.dram_read_transactions:,}",
         f"{s_cnt.dram_read_transactions:,}", ""],
        ["DRAM writes", f"{a_cnt.dram_write_transactions:,}",
         f"{s_cnt.dram_write_transactions:,}",
         f"total {traffic_saving:.0%} fewer (paper ~40%)"],
    ]
    save_report("sec62_ansor_case_study", render_table(
        ["metric", "Ansor", "AStitch", "vs paper"], rows,
        title="Sec 6.2: BERT inference, Ansor vs AStitch"))

    # Shape assertions matching the paper's four claims.
    assert 1.05 < speedup < 2.5
    assert 0.3 < kernel_saving < 0.8
    assert mem_speedup > 1.1
    assert traffic_saving > 0.15


def test_sec62_tuning_cost_gap(benchmark):
    """AStitch avoids search: its JIT overhead is orders of magnitude
    below Ansor's 2000-trial tuning (Sec 6.4.1 vs Sec 6.2)."""
    def compile_costs():
        graph = build("BERT")
        return (compile_cached(AnsorCompiler(), graph).compile_seconds,
                compile_cached(AStitchCompiler(), graph).compile_seconds)

    ansor_cost, astitch_cost = benchmark.pedantic(compile_costs,
                                                  rounds=1, iterations=1)
    assert astitch_cost < ansor_cost / 10
