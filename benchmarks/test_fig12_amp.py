"""Figure 12: inference speedup with auto mixed precision (AMP).

Paper: with baselines *and* AStitch all running under AMP, the speedups
stay similar to Fig 11a — AStitch composes with precision optimization.
"""

from benchmarks.conftest import save_report
from repro.analysis import compare_compilers, geomean, render_table
from repro.compilers import (
    TensorFlowCompiler,
    TensorRTCompiler,
    XLACompiler,
)
from repro.core import AStitchCompiler
from repro.runtime import default_service


def _amp_results(graphs):
    # Warm all (workload, compiler) pairs concurrently, then price.
    default_service().warmup(graphs.values())
    return {name: compare_compilers(
                graph,
                [TensorFlowCompiler(), XLACompiler(), TensorRTCompiler(),
                 AStitchCompiler()])
            for name, graph in graphs.items()}


def test_fig12_amp_speedup(benchmark, inference_results, amp_graphs):
    amp = benchmark.pedantic(lambda: _amp_results(amp_graphs),
                             rounds=1, iterations=1)
    rows = []
    for name, result in amp.items():
        rows.append([
            name,
            f"{result.speedup('XLA'):.2f}",
            f"{result.speedup('TensorRT'):.2f}",
            f"{result.speedup('AStitch'):.2f}",
        ])
    save_report("fig12_amp_speedup", render_table(
        ["model", "XLA", "TensorRT", "AStitch"], rows,
        title="Fig 12: inference speedup over TensorFlow, all systems "
              "under AMP (paper: similar to Fig 11a)"))

    amp_gains = [r.speedup("AStitch", versus="XLA")
                 for r in amp.values()]
    fp32_gains = [inference_results[n].speedup("AStitch", versus="XLA")
                  for n in amp]
    # Shape: AStitch still wins under AMP, by a similar average factor.
    assert all(g > 1.0 for g in amp_gains)
    assert 0.6 < geomean(amp_gains) / geomean(fp32_gains) < 1.6


def test_fig12_amp_is_faster_than_fp32(benchmark, inference_results,
                                       amp_graphs):
    amp = benchmark.pedantic(lambda: _amp_results(amp_graphs),
                             rounds=1, iterations=1)
    for name, result in amp.items():
        fp32_time = inference_results[name].time("AStitch")
        assert result.time("AStitch") < fp32_time
