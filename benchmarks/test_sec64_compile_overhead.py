"""Sec 6.4.1: JIT compilation overhead.

Paper: on computation graphs of 5,000-10,000 nodes, AStitch's
optimization passes take ~90 s on average where XLA takes ~30 s — a 3x
premium, paid once, far below search-based tuning (Ansor runs 2,000
measured trials).

This bench checks both the *modeled* compile seconds (which reproduce
the paper's numbers) and the *actual* wall time of this repository's
passes (which must stay interactive).
"""

import time

from benchmarks.conftest import compile_cached, save_report
from repro.analysis import render_table
from repro.compilers import AnsorCompiler, XLACompiler
from repro.core import AStitchCompiler
from repro.workloads import micro


def _modeled(num_nodes):
    graph = micro.giant_elementwise_graph(num_nodes)
    xla = compile_cached(XLACompiler(), graph)
    astitch = compile_cached(AStitchCompiler(), graph)
    return len(graph), xla.compile_seconds, astitch.compile_seconds


def test_sec64_modeled_compile_overhead(benchmark):
    data = benchmark.pedantic(
        lambda: [_modeled(n) for n in (5000, 7500, 10_000)],
        rounds=1, iterations=1)
    rows = [[nodes, f"{x:.0f}", f"{a:.0f}", f"{a/x:.1f}x"]
            for nodes, x, a in data]
    save_report("sec64_compile_overhead", render_table(
        ["graph nodes", "XLA (s)", "AStitch (s)", "ratio"], rows,
        title="Sec 6.4.1: modeled JIT overhead on 5k-10k-node graphs "
              "(paper: XLA ~30 s, AStitch ~90 s)"))

    mid = data[1]
    assert 20 < mid[1] < 45          # XLA ~30 s band
    assert 60 < mid[2] < 135         # AStitch ~90 s band
    assert 2.5 < mid[2] / mid[1] < 3.5


def test_sec64_still_cheaper_than_search(benchmark):
    def overheads():
        graph = micro.giant_elementwise_graph(5000)
        return (compile_cached(AStitchCompiler(), graph).compile_seconds,
                compile_cached(AnsorCompiler(), graph).compile_seconds)

    astitch, ansor = benchmark.pedantic(overheads, rounds=1, iterations=1)
    assert astitch < ansor


def test_sec64_actual_pass_wall_time(benchmark):
    """The reproduction's own passes stay interactive on 10k nodes."""
    graph = micro.giant_elementwise_graph(10_000)

    def compile_once():
        # Deliberately bypasses the compile cache: this bench times the
        # real optimization passes, not a cache hit.
        start = time.perf_counter()
        AStitchCompiler().compile(graph)
        return time.perf_counter() - start

    wall = benchmark.pedantic(compile_once, rounds=1, iterations=1)
    assert wall < 60.0
