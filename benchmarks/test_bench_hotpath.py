"""BENCH: cold vs. warm pricing through the execution-plan layer.

PR 1 amortized compilation; this PR amortizes pricing.  A module's
priced timeline is a pure function of (module content, spec, engine
config), so the plan cache turns the serving hot path from
O(requests x steps) cost-model work into O(unique modules): a 10k-request
mixed loadtest on a cold process state (fresh compile cache, fresh plan
cache, fresh oracle) is compared against the same test with warm caches
(only the oracle is fresh), and the per-module plan build/replay
micro-timings and the Fig 11 figure-harness pricing loop are recorded
alongside.  Results go to ``BENCH_hotpath.json`` (repo root and
``benchmarks/results/``).

Acceptance bars asserted here: >= 10,000 requests, >= 5x warm-vs-cold
wall clock, and byte-identical metrics versus the scalar slow path.
"""

from __future__ import annotations

from repro.analysis.hotpath import render_hotpath_report, run_hotpath_bench

from benchmarks.conftest import record_bench, save_report

SPEEDUP_FLOOR = 5.0
REQUEST_FLOOR = 10_000


def test_bench_hotpath():
    """Cold-vs-warm hot-path wall time; asserts the >=5x warm speedup."""
    payload = run_hotpath_bench()

    record_bench("hotpath", payload)
    save_report("BENCH_hotpath", render_hotpath_report(payload))

    load = payload["loadtest"]
    assert load["requests"] >= REQUEST_FLOOR, (
        f"loadtest offered only {load['requests']} requests "
        f"(floor {REQUEST_FLOOR})")
    assert load["speedup"] >= SPEEDUP_FLOOR, (
        f"warm loadtest only {load['speedup']:.1f}x faster than cold "
        f"(floor {SPEEDUP_FLOOR}x)")
    assert payload["figure_harness"]["speedup"] >= SPEEDUP_FLOOR
    # The fast path must be invisible in the numbers: warm/cold plan-path
    # and scalar slow-path reports are identical bit for bit.
    assert payload["deterministic"]
    # Warm passes replay cached plans instead of re-pricing.
    assert payload["plan_cache"]["hits"] >= payload["plan_cache"]["misses"]
    for row in payload["plans"]:
        assert row["replay_seconds"] < row["build_seconds"]
