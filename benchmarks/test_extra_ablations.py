"""Extra ablations beyond Table 4, for the design choices DESIGN.md
calls out.

* global scheme on/off — "regional-only" approximates the
  FusionStitching predecessor ([57] in the paper), which AStitch's
  global scheme enlarges upon;
* remote stitching on/off (Sec 4.1);
* task packing/splitting benefits per irregular shape (Sec 3.3).
"""

from benchmarks.conftest import compile_cached, save_report
from repro.analysis import render_table
from repro.codegen import mapping as mappings
from repro.codegen.builder import kernel_cost_inputs
from repro.core import AStitchCompiler, AStitchConfig
from repro.gpu.costmodel import KernelCostModel
from repro.gpu.spec import V100
from repro.runtime import Engine
from repro.workloads import build, micro


def _total_time(config, graph):
    module = compile_cached(AStitchCompiler(config), graph)
    return Engine().run(module).total_time, len(module.kernels())


def test_extra_global_scheme_ablation(benchmark):
    def run():
        graph = micro.column_reduce_chain(size=256, steps=16)
        return {
            "full": _total_time(AStitchConfig.full(), graph),
            "regional-only": _total_time(AStitchConfig.regional_only(),
                                         graph),
        }

    data = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [[name, kernels, f"{t*1e6:.1f}"]
            for name, (t, kernels) in data.items()]
    save_report("extra_global_scheme", render_table(
        ["config", "kernels", "time (us)"], rows,
        title="Extra ablation: global scheme vs regional-only "
              "(FusionStitching-style) on a column-normalization chain"))

    # The global scheme keeps the chain in one kernel (barriers are
    # cheaper than launches, Table 6); without it the scope shatters
    # into per-stage launches.
    assert data["full"][1] < data["regional-only"][1]
    assert data["full"][0] < data["regional-only"][0]


def test_extra_remote_stitching_ablation(benchmark, inference_graphs):
    def run():
        graph = inference_graphs["BERT"]
        with_remote = _total_time(AStitchConfig.full(), graph)
        without = _total_time(AStitchConfig(remote_stitching=False),
                              graph)
        return with_remote, without

    (t_on, k_on), (t_off, k_off) = benchmark.pedantic(run, rounds=1,
                                                      iterations=1)
    save_report("extra_remote_stitching", render_table(
        ["config", "kernels", "time (ms)"],
        [["remote stitching on", k_on, f"{t_on*1e3:.2f}"],
         ["remote stitching off", k_off, f"{t_off*1e3:.2f}"]],
        title="Extra ablation: remote stitching on BERT"))
    assert k_on < k_off
    assert t_on <= t_off * 1.02


def test_extra_packing_and_splitting(benchmark):
    """Per-shape benefit of each Sec 3.3 mechanism in isolation."""
    def run():
        cost = KernelCostModel(V100)
        out = {}
        for rows, cols, mechanism in [(750_000, 32, "packing"),
                                      (64, 30_000, "splitting")]:
            graph = micro.row_reduce(rows, cols)
            reduce_node = next(n for n in graph.nodes
                               if n.kind.value == "reduce")

            def price(mapping):
                from repro.codegen.builder import make_kernel
                kernel = make_kernel(graph, [reduce_node], mapping,
                                     outputs=[reduce_node])
                return cost.price(kernel_cost_inputs(kernel)).duration

            naive = price(mappings.naive_row_reduce(rows, cols))
            adaptive = price(mappings.adaptive_row_reduce(rows, cols,
                                                          V100))
            out[mechanism] = (naive, adaptive)
        return out

    data = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [[m, f"{n*1e6:.1f}", f"{a*1e6:.1f}", f"{n/a:.2f}x"]
            for m, (n, a) in data.items()]
    save_report("extra_packing_splitting", render_table(
        ["mechanism", "naive (us)", "adaptive (us)", "gain"], rows,
        title="Extra ablation: task packing (Fig 8a) and task "
              "splitting (Fig 8b) in isolation"))
    for mechanism, (naive, adaptive) in data.items():
        assert adaptive < naive, mechanism
