"""Table 6: overhead of the inlined global barrier.

Paper (V100, block size 1024): a barrier-only kernel costs 2.53 us at 20
blocks rising to 2.72 us at 160 blocks (the per-wave cap), always below
the ~10 us kernel-launch overhead it replaces.  Removing the barrier
from CRNN shows no measurable end-to-end gain — the barrier is not a
bottleneck.
"""

import pytest

from benchmarks.conftest import compile_cached, save_report
from repro.analysis import render_table
from repro.gpu.barrier import global_barrier_latency
from repro.gpu.spec import V100

PAPER_US = {20: 2.53, 40: 2.53, 60: 2.59, 80: 2.59,
            100: 2.66, 120: 2.66, 140: 2.69, 160: 2.72}


def test_table6_barrier_latency(benchmark):
    blocks = list(PAPER_US)
    times = benchmark.pedantic(
        lambda: {b: global_barrier_latency(V100, b) for b in blocks},
        rounds=1, iterations=1)
    rows = [[b, f"{times[b]*1e6:.2f}", f"{PAPER_US[b]:.2f}"]
            for b in blocks]
    save_report("table6_global_barrier", render_table(
        ["#blocks", "time (us, model)", "time (us, paper)"], rows,
        title="Table 6: inlined global-barrier overhead on V100"))

    for b in blocks:
        assert times[b] * 1e6 == pytest.approx(PAPER_US[b], abs=0.06)
    # Grows slowly and stays under the launch overhead it replaces.
    assert times[160] < times[20] * 1.15
    assert times[160] < V100.kernel_launch_latency


def test_table6_v100_wave_capacity(benchmark):
    wave = benchmark.pedantic(lambda: V100.blocks_per_wave(1024),
                              rounds=1, iterations=1)
    # "A V100 GPU can accommodate at most 160 such thread blocks."
    assert wave == 160


def test_table6_barrier_not_crnn_bottleneck(benchmark):
    """Sec 6.4.2: barriers contribute a negligible share of CRNN time."""
    from repro.core import AStitchCompiler
    from repro.runtime import Engine
    from repro.workloads import build

    def barrier_share():
        module = compile_cached(AStitchCompiler(), build("CRNN"))
        profile = Engine().run(module)
        barrier_time = sum(
            k.num_global_barriers * global_barrier_latency(
                V100, k.mapping.grid_size)
            for k in module.kernels())
        return barrier_time / profile.total_time

    share = benchmark.pedantic(barrier_share, rounds=1, iterations=1)
    assert share < 0.05
