"""Extension: does the advantage grow on newer devices?

Fig 1's motivation: A100's compute/bandwidth ratio is ~5.6x V100's, so
the memory-intensive share of execution time *rises* across GPU
generations — which should make stitching more valuable, not less.
This bench replays the end-to-end comparison on the A100 model and
checks the trend.
"""

from benchmarks.conftest import save_report
from repro.analysis import compare_compilers, geomean, render_table
from repro.compilers import TensorFlowCompiler, XLACompiler
from repro.core import AStitchCompiler
from repro.gpu.spec import A100, V100
from repro.runtime import default_service
from repro.workloads import WORKLOADS


def _per_device(graphs):
    compilers = [TensorFlowCompiler(), XLACompiler(), AStitchCompiler()]
    out = {}
    for spec in (V100, A100):
        default_service().warmup(graphs.values(), compilers, spec=spec)
        gains = {}
        for name, graph in graphs.items():
            result = compare_compilers(graph, compilers, spec=spec)
            gains[name] = result.speedup("AStitch", versus="XLA")
        out[spec.name] = gains
    return out


def test_extra_a100_trend(benchmark, inference_graphs):
    data = benchmark.pedantic(lambda: _per_device(inference_graphs),
                              rounds=1, iterations=1)
    rows = []
    for name in WORKLOADS:
        rows.append([name,
                     f"{data['V100'][name]:.2f}x",
                     f"{data['A100'][name]:.2f}x"])
    v100_geo = geomean(data["V100"].values())
    a100_geo = geomean(data["A100"].values())
    rows.append(["geomean", f"{v100_geo:.2f}x", f"{a100_geo:.2f}x"])
    save_report("extra_a100_trend", render_table(
        ["model", "AStitch/XLA on V100", "AStitch/XLA on A100"], rows,
        title="Device-generation trend (Fig 1's motivation): the "
              "memory-intensive share rises on A100, so stitching's "
              "advantage holds or grows"))

    # The advantage never collapses on the newer device, and on average
    # holds or grows (the paper's 'increasingly crucial' claim).
    for name in WORKLOADS:
        assert data["A100"][name] > 1.0, name
    assert a100_geo > v100_geo * 0.9
