"""Extension studies: shape sweeps and JIT amortization crossovers.

* **Shape sweep** — where does stitching's advantage live?  Sweeping a
  softmax over tensor sizes: tiny tensors are launch-bound (stitching
  wins big), mid sizes are occupancy-bound (adaptive mapping wins),
  huge tensors approach pure bandwidth where the remaining gain is the
  traffic saved by on-chip reuse.
* **JIT amortization** — Sec 6.4.1's "overhead introduced only once":
  iterations at which AStitch's 3x JIT premium over XLA pays back, and
  at which either beats Ansor's 2000-trial tuning.
"""

from benchmarks.conftest import compile_cached, save_report
from repro.analysis import render_table
from repro.analysis.amortization import SystemCost, break_even_iterations
from repro.compilers import AnsorCompiler, XLACompiler
from repro.core import AStitchCompiler
from repro.runtime import Engine
from repro.workloads import build, micro

SWEEP = [(64, 64), (512, 256), (4096, 512), (65_536, 512),
         (1_000_000, 64)]


def _sweep():
    engine = Engine()
    rows = []
    for shape in SWEEP:
        graph = micro.softmax_graph(*shape)
        xla = engine.run(compile_cached(XLACompiler(), graph))
        astitch = engine.run(compile_cached(AStitchCompiler(), graph))
        rows.append((shape, xla.total_time, astitch.total_time))
    return rows


def test_extra_shape_sweep(benchmark):
    data = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    rows = []
    gains = []
    for shape, xla_time, astitch_time in data:
        gain = xla_time / astitch_time
        gains.append(gain)
        rows.append([f"<{shape[0]},{shape[1]}>",
                     f"{xla_time*1e6:.1f}", f"{astitch_time*1e6:.1f}",
                     f"{gain:.2f}x"])
    save_report("extra_shape_sweep", render_table(
        ["softmax shape", "XLA (us)", "AStitch (us)", "gain"], rows,
        title="Shape sweep: stitching gains are largest where launch "
              "overhead and occupancy dominate, and shrink toward the "
              "traffic ratio at bandwidth saturation"))

    # Crossover structure: AStitch never loses; the gain at the tiny
    # (launch-bound) end exceeds the gain at the huge (bandwidth-bound)
    # end.
    assert all(g >= 0.99 for g in gains)
    assert gains[0] > gains[-1]
    assert max(gains) > 1.5


def test_extra_jit_amortization(benchmark):
    def run():
        graph = build("CRNN")
        engine = Engine()
        systems = {}
        for compiler in (XLACompiler(), AnsorCompiler(),
                         AStitchCompiler()):
            module = compile_cached(compiler, graph)
            profile = engine.run(module)
            systems[compiler.name] = SystemCost(
                compiler.name, module.compile_seconds,
                profile.total_time)
        return systems

    systems = benchmark.pedantic(run, rounds=1, iterations=1)
    xla, ansor, astitch = (systems["XLA"], systems["Ansor"],
                           systems["AStitch"])
    vs_xla = break_even_iterations(astitch, xla)
    vs_ansor = break_even_iterations(astitch, ansor)
    rows = [
        ["AStitch vs XLA", f"{astitch.compile_seconds:.0f}s vs "
         f"{xla.compile_seconds:.0f}s", f"{vs_xla:,.0f}"],
        ["AStitch vs Ansor", f"{astitch.compile_seconds:.0f}s vs "
         f"{ansor.compile_seconds:.0f}s", f"{vs_ansor:,.0f}"],
    ]
    save_report("extra_jit_amortization", render_table(
        ["pair", "JIT cost", "break-even iterations"], rows,
        title="Sec 6.4.1 quantified: iterations until the JIT premium "
              "pays back (CRNN)"))

    # AStitch repays its 3x-over-XLA JIT premium within a production
    # run's iteration count, and dominates Ansor from iteration zero
    # (cheaper compile AND faster iterations).
    assert 0 < vs_xla < 100_000
    assert vs_ansor == 0.0
