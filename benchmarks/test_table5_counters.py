"""Table 5: total performance counters of all memory-intensive ops.

Paper (CRNN, XLA -> AStitch): dram_read_transactions 104.1M -> 104.0M
(flat), dram_write_transactions 63.8M -> 16.3M (-74%), inst_fp_32
1.700G -> 1.675G — hierarchical data management buffers intermediates
on-chip, so the dominant saving is on *stores* of intermediates.

In this reproduction the same signature appears most cleanly on DIEN
(whose memory-intensive traffic is almost all intermediates); our CRNN
variant's writes are dominated by conv-stage outputs that any compiler
must materialize for cuDNN, so its savings show up on the read side
instead.  Both are reported; the assertions check the mechanism: total
off-chip traffic and FP instructions never increase and drop
substantially overall.
"""

from benchmarks.conftest import save_report
from repro.analysis import render_table


def _counter_rows(result):
    xla = result.profiles["XLA"].aggregate_mem_counters()
    astitch = result.profiles["AStitch"].aggregate_mem_counters()
    return xla, astitch


def test_table5_crnn_counters(benchmark, inference_results):
    result = benchmark.pedantic(lambda: inference_results["CRNN"],
                                rounds=1, iterations=1)
    xla, astitch = _counter_rows(result)
    rows = [
        ["dram_read_transactions",
         f"{xla.dram_read_transactions:,}",
         f"{astitch.dram_read_transactions:,}"],
        ["dram_write_transactions",
         f"{xla.dram_write_transactions:,}",
         f"{astitch.dram_write_transactions:,}"],
        ["inst_fp_32", f"{xla.inst_fp_32:,}", f"{astitch.inst_fp_32:,}"],
    ]
    save_report("table5_crnn_counters", render_table(
        ["counter", "XLA", "AStitch"], rows,
        title="Table 5: CRNN totals over all memory-intensive kernels "
              "(paper: intermediates stay on-chip; total traffic and "
              "instructions drop)"))

    total_saving = 1 - (astitch.dram_total_transactions
                        / xla.dram_total_transactions)
    assert total_saving > 0.2
    assert astitch.dram_write_transactions <= xla.dram_write_transactions
    assert astitch.inst_fp_32 <= xla.inst_fp_32


def test_table5_write_signature_on_dien(benchmark, inference_results):
    """The paper's CRNN signature — stores drop far more than loads —
    appears on the workload whose traffic is dominated by
    intermediates."""
    result = benchmark.pedantic(lambda: inference_results["DIEN"],
                                rounds=1, iterations=1)
    xla, astitch = _counter_rows(result)
    write_saving = 1 - (astitch.dram_write_transactions
                        / xla.dram_write_transactions)
    read_saving = 1 - (astitch.dram_read_transactions
                       / xla.dram_read_transactions)
    save_report("table5_dien_counters", render_table(
        ["counter", "XLA", "AStitch"],
        [["dram_read_transactions", f"{xla.dram_read_transactions:,}",
          f"{astitch.dram_read_transactions:,}"],
         ["dram_write_transactions", f"{xla.dram_write_transactions:,}",
          f"{astitch.dram_write_transactions:,}"],
         ["inst_fp_32", f"{xla.inst_fp_32:,}",
          f"{astitch.inst_fp_32:,}"]],
        title="Table 5 signature on DIEN: stores of intermediates "
              "vanish (paper CRNN: writes -74%, reads ~flat)"))
    assert write_saving > 0.4
    assert write_saving > read_saving


def test_table5_pattern_holds_across_models(benchmark, inference_results):
    results = benchmark.pedantic(lambda: inference_results, rounds=1,
                                 iterations=1)
    for name, result in results.items():
        xla, astitch = _counter_rows(result)
        assert (astitch.dram_total_transactions
                < xla.dram_total_transactions), name
        assert astitch.inst_fp_32 <= xla.inst_fp_32 * 1.001, name
