"""Extension study: intermediate-memory footprint per compiler.

Not a paper table, but a direct corollary of hierarchical data reuse:
values kept in registers/shared memory never occupy global buffers, so
stitching shrinks the peak intermediate memory one iteration holds —
the same axis on which the paper criticizes CUDA Graph's per-kernel
metadata ([35], Sec 7).
"""

from benchmarks.conftest import compile_cached, save_report
from repro.analysis import render_table
from repro.analysis.footprint import measure_footprint
from repro.compilers import CudaGraphCompiler, TensorFlowCompiler, \
    XLACompiler
from repro.core import AStitchCompiler
from repro.workloads import WORKLOADS, build


def _study():
    out = {}
    for name in WORKLOADS:
        graph = build(name)
        row = {}
        for compiler in (TensorFlowCompiler(), XLACompiler(),
                         AStitchCompiler()):
            row[compiler.name] = measure_footprint(
                compile_cached(compiler, graph))
        out[name] = row
    return out


def test_extra_memory_footprint(benchmark):
    data = benchmark.pedantic(_study, rounds=1, iterations=1)
    rows = []
    for name, row in data.items():
        rows.append([
            name,
            f"{row['TensorFlow'].peak_intermediate_bytes / 1e6:.1f}",
            f"{row['XLA'].peak_intermediate_bytes / 1e6:.1f}",
            f"{row['AStitch'].peak_intermediate_bytes / 1e6:.1f}",
            row["XLA"].materialized_values,
            row["AStitch"].materialized_values,
        ])
    save_report("extra_memory_footprint", render_table(
        ["model", "TF peak (MB)", "XLA peak (MB)", "AStitch peak (MB)",
         "XLA tensors", "AStitch tensors"], rows,
        title="Peak intermediate device memory per iteration "
              "(stitching keeps values on chip)"))

    for name, row in data.items():
        # In-kernel global scratch can briefly overlap live values, so
        # allow a small tolerance on the peak; the materialized-tensor
        # count drops strictly.
        assert (row["AStitch"].peak_intermediate_bytes
                <= row["XLA"].peak_intermediate_bytes * 1.15), name
        assert (row["AStitch"].materialized_values
                < row["XLA"].materialized_values), name
        assert (row["AStitch"].total_allocated_bytes
                <= row["XLA"].total_allocated_bytes), name


def test_extra_cuda_graph_metadata_vs_stitching(benchmark):
    """Sec 7: CUDA Graph stores per-kernel metadata; stitching shrinks
    the kernel count itself."""
    def run():
        graph = build("Transformer")
        captured = compile_cached(CudaGraphCompiler(), graph)
        stitched = compile_cached(AStitchCompiler(), graph)
        return (CudaGraphCompiler.metadata_bytes(captured),
                len(captured.kernels()), len(stitched.kernels()))

    meta_bytes, graph_kernels, stitched_kernels = benchmark.pedantic(
        run, rounds=1, iterations=1)
    save_report("extra_cudagraph_metadata", render_table(
        ["metric", "value"],
        [["CUDA Graph metadata (MB)", f"{meta_bytes / 1e6:.1f}"],
         ["CUDA Graph kernel nodes", graph_kernels],
         ["AStitch kernels", stitched_kernels]],
        title="CUDA Graph memory overhead vs stitching "
              "(paper Sec 7 / [35])"))
    assert meta_bytes > 10 * 1e6          # tens of MB at this scale
    assert stitched_kernels < graph_kernels