"""Figure 1: ratio of memory-intensive computation under TensorFlow.

The paper reports, per model, the share of memory-intensive ops in (a)
GPU execution time and (b) kernel count, measured on TF v1.15 — averages
of 63.2% (time, V100) and 89.6% (count), rising to 76.7% (time) on A100
because A100's compute/bandwidth ratio is ~5.6x higher.
"""

import pytest

from benchmarks.conftest import compile_cached, save_report
from repro.analysis import mean, render_table
from repro.compilers import TensorFlowCompiler
from repro.gpu.spec import A100, V100
from repro.runtime import Engine
from repro.workloads import WORKLOADS, build


def _ratios(spec):
    rows = {}
    for name in WORKLOADS:
        graph = build(name)
        module = compile_cached(TensorFlowCompiler(), graph, spec)
        profile = Engine(spec).run(module)
        kernel_time = profile.mem_time + profile.compute_time
        rows[name] = {
            "time_ratio": profile.mem_time / kernel_time,
            "count_ratio": profile.mem_kernel_count / (
                profile.mem_kernel_count + profile.compute_kernel_count),
        }
    return rows


@pytest.fixture(scope="module")
def fig1():
    return {"V100": _ratios(V100), "A100": _ratios(A100)}


def test_fig01_ratios(benchmark, fig1):
    data = benchmark.pedantic(lambda: fig1, rounds=1, iterations=1)
    v100, a100 = data["V100"], data["A100"]
    rows = [
        [name,
         f"{v100[name]['time_ratio']:.1%}",
         f"{v100[name]['count_ratio']:.1%}",
         f"{a100[name]['time_ratio']:.1%}"]
        for name in v100
    ]
    avg_time = mean(r["time_ratio"] for r in v100.values())
    avg_count = mean(r["count_ratio"] for r in v100.values())
    avg_a100 = mean(r["time_ratio"] for r in a100.values())
    rows.append(["average", f"{avg_time:.1%}", f"{avg_count:.1%}",
                 f"{avg_a100:.1%}"])
    save_report("fig01_memory_intensive_ratio", render_table(
        ["model", "time% (V100)", "kernels% (V100)", "time% (A100)"],
        rows,
        title="Fig 1: memory-intensive share under TensorFlow "
              "(paper: 63.2% time / 89.6% kernels on V100; 76.7% on "
              "A100)"))

    # Shape: memory-intensive computation dominates kernel counts for
    # every model and execution time on average.
    assert all(r["count_ratio"] > 0.75 for r in v100.values())
    assert avg_time > 0.5
    assert avg_count > 0.85


def test_fig01_a100_ratio_rises(benchmark, fig1):
    data = benchmark.pedantic(lambda: fig1, rounds=1, iterations=1)
    v100_avg = mean(r["time_ratio"] for r in data["V100"].values())
    a100_avg = mean(r["time_ratio"] for r in data["A100"].values())
    # The paper: 63.2% -> 76.7% moving to A100 (TF32 default).
    assert a100_avg > v100_avg
