"""Sec 2.3.2 / Fig 6 / Fig 8: irregular production tensor shapes.

Two real production row-reductions defeat XLA's fixed thread mapping:

* ``<750000,32>`` (DIEN) — 750,000 blocks of 32 threads (small block
  size); AStitch packs 32 rows per 1024-thread block (Fig 8a);
* ``<64,30000>`` (Transformer) — 64 blocks of 1024 threads on an 80-SM
  V100 (small block count); AStitch splits each row across blocks with a
  cross-block atomic (Fig 8b).
"""

from benchmarks.conftest import compile_cached, save_report
from repro.analysis import render_table
from repro.codegen.builder import kernel_cost_inputs
from repro.compilers import XLACompiler
from repro.core import AStitchCompiler
from repro.gpu.costmodel import KernelCostModel
from repro.gpu.spec import V100
from repro.workloads import micro

SHAPES = [(750_000, 32), (64, 30_000)]


def _probe():
    cost = KernelCostModel(V100)
    out = {}
    for rows, cols in SHAPES:
        graph = micro.row_reduce(rows, cols)
        entry = {}
        for compiler in (XLACompiler(), AStitchCompiler()):
            kernel = compile_cached(compiler, graph).kernels()[0]
            counters = cost.price(kernel_cost_inputs(kernel))
            entry[compiler.name] = (kernel.mapping, counters)
        out[(rows, cols)] = entry
    return out


def test_sec23_fig6_launch_configurations(benchmark):
    data = benchmark.pedantic(_probe, rounds=1, iterations=1)

    xla_a = data[(750_000, 32)]["XLA"][0]
    assert xla_a.grid_size == 750_000 and xla_a.block_size == 32

    xla_b = data[(64, 30_000)]["XLA"][0]
    assert xla_b.grid_size == 64 and xla_b.block_size == 1024

    astitch_a = data[(750_000, 32)]["AStitch"][0]
    assert astitch_a.block_size == 1024        # Fig 8a packing

    astitch_b = data[(64, 30_000)]["AStitch"][0]
    assert astitch_b.grid_size > 64            # Fig 8b splitting

    rows = []
    for shape, entry in data.items():
        for name, (mapping, counters) in entry.items():
            rows.append([
                f"<{shape[0]},{shape[1]}>", name, mapping.describe(),
                f"{counters.achieved_occupancy:.2f}",
                f"{counters.duration * 1e6:.1f}",
            ])
    save_report("sec23_irregular_shapes", render_table(
        ["shape", "compiler", "mapping", "occupancy", "time (us)"], rows,
        title="Fig 6/8: thread mappings for irregular row-reduces"))


def test_sec23_adaptive_mapping_faster(benchmark):
    data = benchmark.pedantic(_probe, rounds=1, iterations=1)
    for shape, entry in data.items():
        xla_time = entry["XLA"][1].duration
        astitch_time = entry["AStitch"][1].duration
        assert astitch_time < xla_time, shape
        # Occupancy also improves on both pathologies.
        assert (entry["AStitch"][1].achieved_occupancy
                > entry["XLA"][1].achieved_occupancy)
