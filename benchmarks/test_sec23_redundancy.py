"""Sec 2.3.1 / Fig 5: the fuse-or-skip dilemma on one-to-many patterns.

TVM fuses ``power<2> -> broadcast<2,128> -> add`` by per-element inlining
and recomputes the power 128 times per element; XLA skips the fusion and
pays an extra kernel; AStitch stitches with shared-memory reuse — one
kernel, no redundancy.
"""

from benchmarks.conftest import compile_cached, save_report
from repro.analysis import render_table
from repro.codegen.builder import kernel_cost_inputs
from repro.compilers import TVMCompiler, XLACompiler
from repro.core import AStitchCompiler
from repro.workloads import micro


def _stats(rows=4096, cols=128):
    graph = micro.power_broadcast_add(rows, cols)
    out = {}
    for compiler in (XLACompiler(), TVMCompiler(), AStitchCompiler()):
        module = compile_cached(compiler, graph)
        fp = sum(kernel_cost_inputs(k).fp_instructions
                 for k in module.kernels())
        out[compiler.name] = (len(module.kernels()), fp)
    return out


def test_sec23_tvm_redundant_computation(benchmark):
    data = benchmark.pedantic(_stats, rounds=1, iterations=1)
    rows = [[name, kernels, f"{fp:,.0f}"]
            for name, (kernels, fp) in data.items()]
    save_report("sec23_redundancy", render_table(
        ["compiler", "kernels", "fp instructions"], rows,
        title="Fig 5 pattern power->broadcast->add: "
              "fuse (TVM, redundant) vs skip (XLA, extra kernel) vs "
              "stitch (AStitch)"))

    xla_kernels, xla_fp = data["XLA"]
    tvm_kernels, tvm_fp = data["TVM"]
    astitch_kernels, astitch_fp = data["AStitch"]
    # The dilemma: TVM fuses (fewer kernels, far more instructions);
    # XLA skips (more kernels, no redundancy).
    assert tvm_kernels < xla_kernels
    assert tvm_fp > 10 * xla_fp
    # AStitch escapes it: fewest kernels AND no redundant instructions.
    assert astitch_kernels == 1
    assert astitch_fp <= xla_fp * 1.01


def test_sec23_redundancy_scales_with_broadcast_width(benchmark):
    def ratios():
        out = []
        for cols in (32, 128, 512):
            data = _stats(rows=1024, cols=cols)
            out.append((cols, data["TVM"][1] / data["AStitch"][1]))
        return out

    scaling = benchmark.pedantic(ratios, rounds=1, iterations=1)
    # The recompute factor grows with the broadcast amplification and
    # saturates near the heavy op's cost share (power is ~32x an add).
    factors = [f for _, f in scaling]
    assert factors == sorted(factors)
    assert factors[-1] > factors[0] * 1.5
    assert factors[0] > 5.0
