"""Extension study: AStitch vs its predecessor FusionStitching ([57]).

Sec 7 of the paper: "Zheng et al. explore operator stitching with shared
memory ... AStitch enlarges the optimization space with the global
scheme stitching, and avoids expensive cost-model based searching thanks
to the adaptive thread mapping."  This bench quantifies the first claim
across the production workloads: shared-memory-only stitching must
shatter every scope whose values need device-wide visibility.
"""

from benchmarks.conftest import compile_cached, save_report
from repro.analysis import geomean, render_table
from repro.compilers import FusionStitchingCompiler
from repro.core import AStitchCompiler
from repro.runtime import Engine
from repro.workloads import WORKLOADS, build


def _study():
    engine = Engine()
    out = {}
    for name in WORKLOADS:
        graph = build(name)
        fs = engine.run(compile_cached(FusionStitchingCompiler(), graph))
        astitch = engine.run(compile_cached(AStitchCompiler(), graph))
        out[name] = (fs, astitch)
    return out


def test_extra_fusionstitching_comparison(benchmark):
    data = benchmark.pedantic(_study, rounds=1, iterations=1)
    rows = []
    gains = []
    for name, (fs, astitch) in data.items():
        gain = fs.total_time / astitch.total_time
        gains.append(gain)
        rows.append([
            name,
            fs.mem_kernel_count, astitch.mem_kernel_count,
            f"{fs.total_time*1e3:.2f}", f"{astitch.total_time*1e3:.2f}",
            f"{gain:.2f}x",
        ])
    rows.append(["geomean", "-", "-", "-", "-",
                 f"{geomean(gains):.2f}x"])
    save_report("extra_fusionstitching", render_table(
        ["model", "FS kernels", "AStitch kernels", "FS (ms)",
         "AStitch (ms)", "global-scheme gain"], rows,
        title="AStitch vs FusionStitching (shared-memory-only "
              "stitching): what the global scheme adds"))

    # The global scheme never loses and never forms more kernels.
    for name, (fs, astitch) in data.items():
        assert astitch.mem_kernel_count <= fs.mem_kernel_count, name
        assert astitch.total_time <= fs.total_time * 1.02, name
    # And it wins somewhere (the split/column-reduce-heavy workloads).
    assert max(gains) > 1.02
