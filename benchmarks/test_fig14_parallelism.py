"""Figure 14: average parallelism of the top-80% memory-intensive kernels.

Paper: AStitch raises ``achieved_occupancy`` and ``sm_efficiency`` over
XLA on every model except a 2% occupancy dip on DIEN (which still gains
SM efficiency).
"""

from benchmarks.conftest import save_report
from repro.analysis import render_table
from repro.gpu.counters import aggregate, top_time_fraction


def _top80(profile):
    return aggregate(top_time_fraction(profile.mem_counters(), 0.8))


def test_fig14_occupancy_and_efficiency(benchmark, inference_results):
    results = benchmark.pedantic(lambda: inference_results, rounds=1,
                                 iterations=1)
    rows = []
    occupancy_wins = 0
    for name, result in results.items():
        xla = _top80(result.profiles["XLA"])
        astitch = _top80(result.profiles["AStitch"])
        rows.append([
            name,
            f"{xla.achieved_occupancy:.2f}",
            f"{astitch.achieved_occupancy:.2f}",
            f"{xla.sm_efficiency:.2f}",
            f"{astitch.sm_efficiency:.2f}",
        ])
        if astitch.achieved_occupancy >= xla.achieved_occupancy - 0.02:
            occupancy_wins += 1
        # SM efficiency never regresses meaningfully.
        assert astitch.sm_efficiency >= xla.sm_efficiency - 0.05
    save_report("fig14_parallelism", render_table(
        ["model", "XLA occ", "AStitch occ", "XLA eff", "AStitch eff"],
        rows,
        title="Fig 14: average occupancy / SM-efficiency of the top-80% "
              "memory-intensive kernels (paper: AStitch higher overall, "
              "DIEN occupancy within 2%)"))

    # Paper allows one small occupancy dip (DIEN); everything else wins.
    assert occupancy_wins >= len(results) - 1
