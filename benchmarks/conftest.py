"""Shared fixtures for the benchmark harness.

Every bench regenerates one table or figure of the paper: it computes the
same rows/series, prints them (run with ``-s`` to see), writes them under
``benchmarks/results/`` and asserts the paper's qualitative shape.

All heavyweight work (building the five workloads, compiling them under
every strategy, pricing them on the V100 model) happens once per session
in the fixtures below.  Compilation goes through the process-wide
:class:`~repro.runtime.compile_service.CompileService`: the fixtures
warm every (workload, compiler) pair in parallel first, so the
comparison loops below — and every bench that compiles on its own —
are cache hits.
"""

from __future__ import annotations

import json
import pathlib

import pytest

from repro.analysis import ComparisonResult, compare_compilers
from repro.compilers import (
    TensorFlowCompiler,
    TensorRTCompiler,
    XLACompiler,
)
from repro.core import AStitchCompiler
from repro.gpu.spec import V100
from repro.runtime import convert_to_amp, default_service
from repro.workloads import WORKLOADS, build

RESULTS_DIR = pathlib.Path(__file__).parent / "results"
REPO_ROOT = pathlib.Path(__file__).parent.parent

INFERENCE_COMPILERS = ["TensorFlow", "XLA", "TensorRT", "AStitch"]
TRAINING_COMPILERS = ["TensorFlow", "XLA", "AStitch"]


def save_report(name: str, text: str) -> None:
    """Persist a rendered table under benchmarks/results/ and print it."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    print()
    print(text)


def record_bench(name: str, payload: dict, *,
                 sort_keys: bool = False) -> None:
    """Record a BENCH payload to both of its tracked locations.

    One JSON document, two readers: ``BENCH_<name>.json`` at the repo
    root (the at-a-glance perf trajectory) and a twin under
    ``benchmarks/results/`` next to the rendered report.  Every bench
    writes through here so the copies can never drift.
    """
    encoded = json.dumps(payload, indent=2, sort_keys=sort_keys) + "\n"
    RESULTS_DIR.mkdir(exist_ok=True)
    for path in (REPO_ROOT / f"BENCH_{name}.json",
                 RESULTS_DIR / f"BENCH_{name}.json"):
        path.write_text(encoded)


def compile_cached(compiler, graph, spec=V100):
    """Compile through the shared service: structurally identical
    (graph, compiler, spec) requests across bench files hit the
    content-addressed cache instead of recompiling."""
    return default_service().compile(graph, compiler, spec)


def _compare(graph) -> ComparisonResult:
    return compare_compilers(
        graph,
        [TensorFlowCompiler(), XLACompiler(), TensorRTCompiler(),
         AStitchCompiler()],
        spec=V100,
    )


@pytest.fixture(scope="session")
def inference_graphs():
    """The five workloads' inference graphs, built once per session."""
    return {name: build(name) for name in WORKLOADS}


@pytest.fixture(scope="session")
def amp_graphs(inference_graphs):
    """AMP-converted inference graphs (Fig 12), built once per session."""
    return {name: convert_to_amp(graph)
            for name, graph in inference_graphs.items()}


@pytest.fixture(scope="session")
def inference_results(inference_graphs) -> dict[str, ComparisonResult]:
    """Every workload's inference graph under every compiler."""
    default_service().warmup(inference_graphs.values())
    return {name: _compare(graph)
            for name, graph in inference_graphs.items()}


@pytest.fixture(scope="session")
def training_results() -> dict[str, ComparisonResult]:
    """Training graphs (BERT / Transformer / DIEN) under TF/XLA/AStitch.

    TensorRT rejects training graphs and is skipped automatically,
    matching Fig 11b.
    """
    names = [n for n, spec in WORKLOADS.items() if spec.training]
    graphs = {name: build(name, training=True) for name in names}
    default_service().warmup(graphs.values())
    return {name: _compare(graph) for name, graph in graphs.items()}
