"""Shared fixtures for the benchmark harness.

Every bench regenerates one table or figure of the paper: it computes the
same rows/series, prints them (run with ``-s`` to see), writes them under
``benchmarks/results/`` and asserts the paper's qualitative shape.

All heavyweight work (building the five workloads, compiling them under
every strategy, pricing them on the V100 model) happens once per session
in the fixtures below.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.analysis import ComparisonResult, compare_compilers
from repro.compilers import (
    TensorFlowCompiler,
    TensorRTCompiler,
    XLACompiler,
)
from repro.core import AStitchCompiler
from repro.gpu.spec import V100
from repro.workloads import WORKLOADS, build

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

INFERENCE_COMPILERS = ["TensorFlow", "XLA", "TensorRT", "AStitch"]
TRAINING_COMPILERS = ["TensorFlow", "XLA", "AStitch"]


def save_report(name: str, text: str) -> None:
    """Persist a rendered table under benchmarks/results/ and print it."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    print()
    print(text)


def _compare(graph) -> ComparisonResult:
    return compare_compilers(
        graph,
        [TensorFlowCompiler(), XLACompiler(), TensorRTCompiler(),
         AStitchCompiler()],
        spec=V100,
    )


@pytest.fixture(scope="session")
def inference_results() -> dict[str, ComparisonResult]:
    """Every workload's inference graph under every compiler."""
    return {name: _compare(build(name)) for name in WORKLOADS}


@pytest.fixture(scope="session")
def training_results() -> dict[str, ComparisonResult]:
    """Training graphs (BERT / Transformer / DIEN) under TF/XLA/AStitch.

    TensorRT rejects training graphs and is skipped automatically,
    matching Fig 11b.
    """
    names = [n for n, spec in WORKLOADS.items() if spec.training]
    return {name: _compare(build(name, training=True)) for name in names}


@pytest.fixture(scope="session")
def inference_graphs():
    return {name: build(name) for name in WORKLOADS}
