"""Table 3: memory-intensive kernel counts and CUDA memcpy/memset calls.

Paper (XLA -> AStitch): MEM kernels CRNN 986->297, ASR 496->218,
BERT 64->26, Transformer 10132->2578, DIEN 2579->811 — 65.7% saved on
average; CPY calls drop 43.2% on average.
"""

from benchmarks.conftest import save_report
from repro.analysis import render_table

PAPER_MEM = {"CRNN": (986, 297), "ASR": (496, 218), "BERT": (64, 26),
             "Transformer": (10_132, 2_578), "DIEN": (2_579, 811)}


def test_table3_kernel_counts(benchmark, inference_results):
    results = benchmark.pedantic(lambda: inference_results, rounds=1,
                                 iterations=1)
    rows = []
    reductions = []
    cpy_reductions = []
    for name, result in results.items():
        xla, astitch = result.profiles["XLA"], result.profiles["AStitch"]
        saved = 1 - astitch.mem_kernel_count / xla.mem_kernel_count
        cpy_saved = 1 - astitch.memcpy_count / xla.memcpy_count
        reductions.append(saved)
        cpy_reductions.append(cpy_saved)
        rows.append([
            name,
            xla.mem_kernel_count, astitch.mem_kernel_count,
            f"{saved:.0%}",
            xla.memcpy_count, astitch.memcpy_count,
            f"{cpy_saved:.0%}",
            f"{PAPER_MEM[name][0]}->{PAPER_MEM[name][1]}",
        ])
        # Shape: AStitch always forms far fewer memory-intensive kernels
        # and never more memcpy/memset activity.
        assert astitch.mem_kernel_count < xla.mem_kernel_count
        assert astitch.memcpy_count <= xla.memcpy_count
    avg = sum(reductions) / len(reductions)
    avg_cpy = sum(cpy_reductions) / len(cpy_reductions)
    rows.append(["average", "-", "-", f"{avg:.0%}", "-", "-",
                 f"{avg_cpy:.0%}", "paper 65.7% / 43.2%"])
    save_report("table3_kernel_counts", render_table(
        ["model", "MEM XLA", "MEM AStitch", "saved",
         "CPY XLA", "CPY AStitch", "cpy saved", "paper MEM"], rows,
        title="Table 3: kernels of memory-intensive ops and CUDA "
              "memcpy/memset calls"))

    # Magnitude: average MEM-kernel reduction near the paper's 65.7%.
    assert 0.5 < avg < 0.9


def test_table3_transformer_scale(benchmark, inference_results):
    """The Transformer kernel counts land in the paper's order of
    magnitude (thousands, with XLA ~3-4x AStitch)."""
    result = benchmark.pedantic(lambda: inference_results["Transformer"],
                                rounds=1, iterations=1)
    xla = result.profiles["XLA"].mem_kernel_count
    astitch = result.profiles["AStitch"].mem_kernel_count
    assert xla > 4000
    assert 1000 < astitch < 4000
    assert 2.0 < xla / astitch < 6.0
