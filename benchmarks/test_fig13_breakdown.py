"""Figure 13: MEM / OVERHEAD breakdown, XLA normalized to 1.

Paper: AStitch cuts both the memory-intensive kernel time (parallelism
increment) and the non-computation overhead (kernel-call decrement); for
Transformer about 2/3 of OVERHEAD and 1/4 of MEM disappear.
"""

from benchmarks.conftest import save_report
from repro.analysis import breakdown_vs_baseline, render_table


def test_fig13_mem_overhead_breakdown(benchmark, inference_results):
    results = benchmark.pedantic(lambda: inference_results, rounds=1,
                                 iterations=1)
    rows = []
    for name, result in results.items():
        slices = {s.compiler: s for s in breakdown_vs_baseline(
            result.profiles, baseline="XLA")}
        xla, astitch = slices["XLA"], slices["AStitch"]
        rows.append([
            name,
            f"{xla.mem:.2f}", f"{xla.overhead:.2f}",
            f"{astitch.mem:.2f}", f"{astitch.overhead:.2f}",
            f"{astitch.total:.2f}",
        ])
        # Shape: AStitch reduces both slices on every workload.
        assert astitch.mem < xla.mem
        assert astitch.overhead < xla.overhead
        assert xla.total == 1.0 or abs(xla.total - 1.0) < 1e-9
    save_report("fig13_breakdown", render_table(
        ["model", "XLA MEM", "XLA OVH", "AStitch MEM", "AStitch OVH",
         "AStitch total"], rows,
        title="Fig 13: MEM/OVERHEAD breakdown, XLA MEM+OVERHEAD "
              "normalized to 1 (paper: AStitch saves ~2/3 OVERHEAD and "
              "~1/4 MEM on Transformer)"))


def test_fig13_transformer_overhead_savings(benchmark, inference_results):
    results = benchmark.pedantic(lambda: inference_results, rounds=1,
                                 iterations=1)
    profiles = results["Transformer"].profiles
    overhead_saved = 1 - (profiles["AStitch"].overhead_time
                          / profiles["XLA"].overhead_time)
    mem_saved = 1 - (profiles["AStitch"].mem_time
                     / profiles["XLA"].mem_time)
    # Paper: ~2/3 overhead and ~1/4 MEM saved; accept a broad band.
    assert overhead_saved > 0.3
    assert mem_saved > 0.15
