"""Sec 6.3: production-cluster evaluation.

Paper: AStitch deployed on a thousands-of-GPUs cluster saved ~20,000 GPU
hours across ~70,000 tasks in a week; ~23% of jobs are distributed and
consume 56% of the total GPU time.  The estimation method multiplies the
per-iteration time saved (logged after the first iterations) by the
iteration count.

This bench applies the same estimation to a synthetic weekly task mix of
the job families the paper names, using *this reproduction's* measured
per-model AStitch-over-TensorFlow speedups.
"""

from benchmarks.conftest import save_report
from repro.analysis import render_table
from repro.analysis.cluster import (
    FAMILY_WORKLOADS,
    estimate_savings,
    sample_week,
)


def test_sec63_weekly_savings(benchmark, inference_results):
    def run():
        speedups = {
            workload: inference_results[workload].speedup("AStitch")
            for workload in FAMILY_WORKLOADS.values()
        }
        tasks = sample_week(num_tasks=70_000, seed=42)
        return speedups, estimate_savings(tasks, speedups)

    speedups, estimate = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        ["tasks / week", f"{estimate.tasks:,}", "70,000"],
        ["distributed jobs",
         f"{estimate.distributed_share_tasks:.0%}", "23%"],
        ["GPU time in distributed jobs",
         f"{estimate.distributed_share_time:.0%}", "56%"],
        ["baseline GPU hours / week",
         f"{estimate.baseline_gpu_hours:,.0f}", "(not reported)"],
        ["saved GPU hours / week",
         f"{estimate.saved_gpu_hours:,.0f}", "~20,000"],
        ["saved fraction", f"{estimate.saved_fraction:.0%}", "-"],
    ]
    save_report("sec63_production_cluster", render_table(
        ["metric", "model", "paper"], rows,
        title="Sec 6.3: weekly cluster savings estimation "
              f"(per-model speedups: "
              f"{', '.join(f'{k} {v:.1f}x' for k, v in speedups.items())})"))

    # Shape: the job-mix invariants match the paper, and the savings are
    # in the paper's order of magnitude (thousands to tens of thousands
    # of GPU hours for a 70k-task week).
    assert abs(estimate.distributed_share_tasks - 0.23) < 0.02
    assert 0.40 < estimate.distributed_share_time < 0.70
    assert 5_000 < estimate.saved_gpu_hours < 80_000
    assert estimate.saved_gpu_hours < estimate.baseline_gpu_hours


def test_sec63_savings_monotone_in_speedup(benchmark):
    def run():
        tasks = sample_week(num_tasks=5_000, seed=3)
        base = {w: 1.5 for w in FAMILY_WORKLOADS.values()}
        boosted = {w: 3.0 for w in FAMILY_WORKLOADS.values()}
        return (estimate_savings(tasks, base).saved_gpu_hours,
                estimate_savings(tasks, boosted).saved_gpu_hours)

    low, high = benchmark.pedantic(run, rounds=1, iterations=1)
    assert high > low
