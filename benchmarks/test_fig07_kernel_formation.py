"""Figure 7: kernel formation for one memory-intensive subgraph.

Paper: for the Fig 7(a) subgraph, XLA forms 4 kernels (ending at
reduce.1, power.1, reduce.2 and multiply.1), TVM forms 3 (power.1 merged
into reduce.2's kernel, redundantly), and AStitch forms exactly 1 with
hierarchical data reuse.
"""

from benchmarks.conftest import compile_cached, save_report
from repro.analysis import render_table
from repro.compilers import TensorFlowCompiler, TVMCompiler, XLACompiler
from repro.core import AStitchCompiler
from repro.runtime import Engine
from repro.workloads import micro


def _formation():
    graph = micro.fig7_subgraph(rows=1024, cols=512)
    engine = Engine()
    out = {}
    for compiler in (TensorFlowCompiler(), XLACompiler(), TVMCompiler(),
                     AStitchCompiler()):
        module = compile_cached(compiler, graph)
        profile = engine.run(module)
        out[compiler.name] = (len(module.kernels()), profile.mem_time)
    return out


def test_fig07_kernel_formation(benchmark):
    data = benchmark.pedantic(_formation, rounds=1, iterations=1)
    rows = [[name, kernels, f"{t * 1e6:.1f}"]
            for name, (kernels, t) in data.items()]
    save_report("fig07_kernel_formation", render_table(
        ["compiler", "kernels", "MEM time (us)"], rows,
        title="Fig 7: kernels formed for the Fig 7(a) subgraph "
              "(paper: XLA 4, TVM 3, AStitch 1)"))

    assert data["AStitch"][0] == 1
    assert data["TVM"][0] < data["XLA"][0]
    assert data["XLA"][0] < data["TensorFlow"][0]
    # Paper reports 4 (XLA) / 3 (TVM) for its exact subgraph; our
    # variant carries one extra shared divide, adding one-two roots.
    assert data["XLA"][0] in (4, 5, 6)
    assert data["TVM"][0] in (3, 4)


def test_fig07_astitch_fastest(benchmark):
    data = benchmark.pedantic(_formation, rounds=1, iterations=1)
    astitch_time = data["AStitch"][1]
    assert all(astitch_time <= t for _, t in data.values())
