"""Extension study: what would multi-stream execution buy?

The paper's Sec 6.1.2 states it does not explore multi-stream execution;
its (and our) iteration time is the serial sum.  This extension
schedules each compiled module over 1/2/4 CUDA streams with a
dependency-respecting list scheduler and asks how much concurrency could
recover — and whether stitching changes the answer.

Expected shape: XLA's many small independent kernels (q/k/v projections,
parallel branches) benefit from streams; AStitch has already *merged*
that parallelism into wide stitched kernels, so its remaining gain is
smaller — stitching and multi-streaming harvest the same parallelism,
one inside kernels, one across them.
"""

from benchmarks.conftest import compile_cached, save_report
from repro.analysis import render_table
from repro.compilers import XLACompiler
from repro.core import AStitchCompiler
from repro.runtime.timeline import schedule
from repro.workloads import build


def _study(model="BERT"):
    graph = build(model)
    out = {}
    for compiler in (XLACompiler(), AStitchCompiler()):
        module = compile_cached(compiler, graph)
        base = schedule(module, num_streams=1,
                        bandwidth_sharing=False).makespan
        rows = {}
        for streams in (1, 2, 4):
            result = schedule(module, num_streams=streams,
                              bandwidth_sharing=False)
            rows[streams] = base / result.makespan
        out[compiler.name] = rows
    return out


def test_extra_multistream_study(benchmark):
    data = benchmark.pedantic(_study, rounds=1, iterations=1)
    rows = []
    for name, gains in data.items():
        rows.append([name] + [f"{gains[s]:.2f}x" for s in (1, 2, 4)])
    save_report("extra_multistream", render_table(
        ["compiler", "1 stream", "2 streams", "4 streams"], rows,
        title="Extension: idealized multi-stream speedup on BERT "
              "(no bandwidth sharing; the paper and the main engine "
              "are single-stream)"))

    xla, astitch = data["XLA"], data["AStitch"]
    # Streams never hurt in the idealized model...
    assert xla[4] >= xla[1] - 1e-9
    assert astitch[4] >= astitch[1] - 1e-9
    # ...and stitching leaves less cross-kernel parallelism to harvest.
    assert astitch[4] <= xla[4] + 0.05


def test_extra_multistream_bandwidth_sharing_caps_gain(benchmark):
    def run():
        graph = build("BERT")
        module = compile_cached(XLACompiler(), graph)
        free = schedule(module, num_streams=4,
                        bandwidth_sharing=False).makespan
        shared = schedule(module, num_streams=4,
                          bandwidth_sharing=True).makespan
        return free, shared

    free, shared = benchmark.pedantic(run, rounds=1, iterations=1)
    assert shared >= free
