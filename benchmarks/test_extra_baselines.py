"""Extra baseline studies: CUDA Graph, T4 inference, dynamic shapes.

* **CUDA Graph** (paper Sec 7): binds-but-does-not-fuse — isolates how
  much of AStitch's win is launch overhead vs off-chip traffic.
* **T4** (Sec 6.1.1): the paper also evaluates inference on T4 and
  reports speedups of similar shape to V100.
* **Dynamic shapes** (Sec 6.4.1 / DISC [59]): the JIT overhead is paid
  once per shape bucket; serving a varying-batch stream amortizes it.
"""

from benchmarks.conftest import compile_cached, save_report
from repro.analysis import geomean, render_table
from repro.compilers import (
    CudaGraphCompiler,
    TensorFlowCompiler,
    XLACompiler,
)
from repro.core import AStitchCompiler
from repro.gpu.spec import T4, V100
from repro.runtime import Engine
from repro.runtime.jit import JitCache
from repro.workloads import WORKLOADS, build, micro


def test_extra_cuda_graph_decomposition(benchmark):
    """Where does the speedup come from: launches vs traffic?"""
    def run():
        graph = build("Transformer")
        engine = Engine()
        out = {}
        for compiler in (XLACompiler(), CudaGraphCompiler(),
                         AStitchCompiler()):
            profile = engine.run(compile_cached(compiler, graph))
            out[compiler.name] = profile
        return out

    profiles = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [[name,
             f"{p.total_time*1e3:.2f}",
             f"{p.mem_time*1e3:.2f}",
             f"{p.overhead_time*1e3:.2f}"]
            for name, p in profiles.items()]
    save_report("extra_cuda_graph", render_table(
        ["system", "total (ms)", "MEM (ms)", "overhead (ms)"], rows,
        title="CUDA Graph binds kernels (kills launches) but does not "
              "fuse (MEM unchanged); AStitch does both"))

    xla, graphed, astitch = (profiles["XLA"], profiles["CUDAGraph"],
                             profiles["AStitch"])
    assert graphed.overhead_time < xla.overhead_time
    assert graphed.mem_time == xla.mem_time
    assert astitch.total_time < graphed.total_time
    assert astitch.mem_time < graphed.mem_time


def test_extra_t4_inference(benchmark):
    """Sec 6.1.1: the speedup shape carries over to T4."""
    def run():
        out = {}
        engine = Engine(T4)
        for name in WORKLOADS:
            graph = build(name)
            times = {}
            for compiler in (TensorFlowCompiler(), XLACompiler(),
                             AStitchCompiler()):
                module = compile_cached(compiler, graph, T4)
                times[compiler.name] = engine.run(module).total_time
            out[name] = times
        return out

    data = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = []
    gains = []
    for name, times in data.items():
        vs_xla = times["XLA"] / times["AStitch"]
        gains.append(vs_xla)
        rows.append([name,
                     f"{times['TensorFlow']/times['XLA']:.2f}",
                     f"{times['TensorFlow']/times['AStitch']:.2f}",
                     f"{vs_xla:.2f}"])
    rows.append(["geomean", "-", "-", f"{geomean(gains):.2f}"])
    save_report("extra_t4_inference", render_table(
        ["model", "XLA vs TF", "AStitch vs TF", "AStitch vs XLA"], rows,
        title="T4 inference (paper: applicable to more GPU "
              "generations, similar speedups)"))
    assert all(g > 1.0 for g in gains)
    assert geomean(gains) > 1.3


def test_extra_dynamic_shape_serving(benchmark):
    """Serving a varying-batch stream: pow2 bucketing pays the JIT cost
    a handful of times instead of per-request."""
    def run():
        requests = [dict(rows=r, cols=512)
                    for r in (96, 100, 104, 120, 128, 130, 190, 200,
                              250, 256, 100, 128, 200, 96, 250)]
        results = {}
        for policy in ("exact", "pow2"):
            cache = JitCache(AStitchCompiler(), policy=policy)
            for dims in requests:
                cache.get(micro.softmax_graph_factory, dims)
            results[policy] = (cache.stats.misses,
                               cache.stats.compile_seconds)
        return results

    data = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [[policy, misses, f"{seconds:.3f}"]
            for policy, (misses, seconds) in data.items()]
    save_report("extra_dynamic_shapes", render_table(
        ["bucketing", "compilations", "JIT seconds (modeled)"], rows,
        title="Dynamic-shape serving over 15 requests: compile once "
              "per bucket (DISC-style), not per request"))
    assert data["pow2"][0] < data["exact"][0]
    assert data["pow2"][1] < data["exact"][1]
