"""Table 4: CRNN ablation study.

Paper (CRNN inference, ms): XLA 23.95 -> ATM 21.98 -> HDM 20.45 ->
AStitch 17.64.  ATM = adaptive thread mapping on XLA's fusion scopes
(+8.9%); HDM = exhaustive stitching + hierarchical data management
without dominant merging (+8.2%); full AStitch adds dominant merging
(+18.7%).
"""

from benchmarks.conftest import compile_cached, save_report
from repro.analysis import render_table
from repro.compilers import XLACompiler
from repro.core import AStitchCompiler, AStitchConfig
from repro.runtime import Engine
from repro.workloads import build


def _ablation_times():
    graph = build("CRNN")
    engine = Engine()
    configs = [
        ("XLA", XLACompiler()),
        ("ATM", AStitchCompiler(AStitchConfig.adaptive_mapping_only())),
        ("HDM", AStitchCompiler(AStitchConfig.no_dominant_merging())),
        ("AStitch", AStitchCompiler()),
    ]
    return {name: engine.run(compile_cached(compiler, graph)).total_time
            for name, compiler in configs}


def test_table4_crnn_ablation(benchmark):
    times = benchmark.pedantic(_ablation_times, rounds=1, iterations=1)
    paper = {"XLA": 23.95, "ATM": 21.98, "HDM": 20.45, "AStitch": 17.64}
    rows = [[name, f"{times[name]*1000:.2f}", f"{paper[name]:.2f}"]
            for name in ("XLA", "ATM", "HDM", "AStitch")]
    save_report("table4_crnn_ablation", render_table(
        ["config", "time (ms, model)", "time (ms, paper)"], rows,
        title="Table 4: CRNN ablation — each technique contributes"))

    # Shape: strictly monotone improvement as techniques stack.
    assert times["ATM"] < times["XLA"]
    assert times["HDM"] < times["ATM"]
    assert times["AStitch"] < times["HDM"]
    # Magnitude: total gain in the paper's band (paper: 1.36x end to
    # end); accept 1.15x-3x.
    total_gain = times["XLA"] / times["AStitch"]
    assert 1.15 < total_gain < 3.5


def test_table4_each_step_contributes(benchmark):
    times = benchmark.pedantic(_ablation_times, rounds=1, iterations=1)
    atm_gain = times["XLA"] / times["ATM"]
    hdm_gain = times["ATM"] / times["HDM"]
    merge_gain = times["HDM"] / times["AStitch"]
    # Paper: +8.9%, +8.2%, +18.7% — every step gives a visible gain.
    assert atm_gain > 1.01
    assert hdm_gain > 1.01
    assert merge_gain > 1.01
