"""BENCH: cost-model-guided launch-config autotuning vs the heuristics.

Three acceptance bars, recorded to ``BENCH_autotune.json`` (repo root
and ``benchmarks/results/``):

* **never worse** — on every Table 2 registry workload the tuned
  module's modeled iteration time is <= the heuristic module's;
* **irregular-shape wins** — on the row-reduce shapes the Sec 2.3
  discussion calls out (few long rows, no barrier forcing the grid
  down), the tuner's kernel-time speedup geomean is >= 1.10x;
* **warm compiles stay cheap** — with the tuning cache warm, compiling
  the whole registry with tuning on costs <= 1.2x the untuned
  (heuristic) compile wall time.

Kernel time here is the modeled on-device time minus the h2d/d2h
staging (the staging is fixed by the graph, identical for both
variants, and would drown the launch-config signal the tuner targets).
"""

from __future__ import annotations

import math
import time

from repro.core import AStitchCompiler, AStitchConfig
from repro.gpu.spec import V100
from repro.runtime.engine import Engine
from repro.tuning import TuningCache, set_default_tuning_cache
from repro.workloads import WORKLOADS, build, micro

from benchmarks.conftest import record_bench, save_report

# Row-reduce geometries where the one-shot wave-capping rule is wrong
# (plus two where it is right — the geomean is honest, not cherry-picked).
IRREGULAR_SHAPES = [
    (200, 200_000),
    (96, 100_000),
    (64, 30_000),
    (750_000, 32),
]
IRREGULAR_GEOMEAN_FLOOR = 1.10
WARM_COMPILE_CEILING = 1.2
TIMING_REPEATS = 5


def _kernel_time(profile) -> float:
    staging = sum(s.duration + s.overhead for s in profile.steps
                  if s.category == "memcpy")
    return profile.total_time - staging


def _best_of(fn, repeats: int = TIMING_REPEATS) -> float:
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - started)
    return best


def _geomean(values) -> float:
    return math.exp(sum(math.log(v) for v in values) / len(values))


def test_bench_autotune():
    engine = Engine(V100)
    tuned_compiler = AStitchCompiler()
    heuristic_compiler = AStitchCompiler(AStitchConfig.heuristic_mappings())

    set_default_tuning_cache(TuningCache())
    try:
        # -- never worse on the registry --------------------------------
        registry_rows = []
        for name in sorted(WORKLOADS):
            graph = build(name)
            tuned = engine.run(tuned_compiler.compile(graph))
            heuristic = engine.run(heuristic_compiler.compile(graph))
            registry_rows.append({
                "workload": name,
                "heuristic_us": heuristic.total_time * 1e6,
                "tuned_us": tuned.total_time * 1e6,
                "speedup": heuristic.total_time / tuned.total_time,
            })
            assert tuned.total_time <= heuristic.total_time * (1 + 1e-9), \
                f"tuned {name} regressed vs heuristic"

        # -- irregular row-reduce shapes --------------------------------
        irregular_rows = []
        for rows, cols in IRREGULAR_SHAPES:
            graph = micro.row_reduce(rows, cols)
            tuned = _kernel_time(engine.run(tuned_compiler.compile(graph)))
            heuristic = _kernel_time(
                engine.run(heuristic_compiler.compile(graph)))
            irregular_rows.append({
                "shape": f"{rows}x{cols}",
                "heuristic_us": heuristic * 1e6,
                "tuned_us": tuned * 1e6,
                "speedup": heuristic / tuned,
            })
            assert tuned <= heuristic * (1 + 1e-9), \
                f"tuned row_reduce({rows},{cols}) regressed"
        irregular_geomean = _geomean([r["speedup"]
                                      for r in irregular_rows])
        assert irregular_geomean >= IRREGULAR_GEOMEAN_FLOOR, \
            f"irregular geomean {irregular_geomean:.3f} below " \
            f"{IRREGULAR_GEOMEAN_FLOOR}"

        # -- warm-cache compile overhead --------------------------------
        graphs = {name: build(name) for name in sorted(WORKLOADS)}
        compile_rows = []
        heuristic_total = tuned_total = 0.0
        for name, graph in graphs.items():
            tuned_compiler.compile(graph)  # warm the tuning cache
            heuristic_s = _best_of(
                lambda g=graph: heuristic_compiler.compile(g))
            warm_s = _best_of(lambda g=graph: tuned_compiler.compile(g))
            heuristic_total += heuristic_s
            tuned_total += warm_s
            compile_rows.append({
                "workload": name,
                "heuristic_compile_s": heuristic_s,
                "warm_tuned_compile_s": warm_s,
                "ratio": warm_s / heuristic_s,
            })
        warm_ratio = tuned_total / heuristic_total
        assert warm_ratio <= WARM_COMPILE_CEILING, \
            f"warm tuned compile {warm_ratio:.2f}x heuristic, " \
            f"ceiling {WARM_COMPILE_CEILING}x"
    finally:
        set_default_tuning_cache(None)

    payload = {
        "bench": "autotune",
        "registry": registry_rows,
        "irregular": irregular_rows,
        "irregular_geomean": irregular_geomean,
        "compile": compile_rows,
        "warm_compile_ratio": warm_ratio,
    }
    record_bench("autotune", payload, sort_keys=True)

    lines = ["BENCH autotune: tuned vs heuristic launch configs", ""]
    lines.append(f"{'workload':<14} {'heuristic us':>14} {'tuned us':>12} "
                 f"{'speedup':>8}")
    for row in registry_rows:
        lines.append(f"{row['workload']:<14} {row['heuristic_us']:>14.1f} "
                     f"{row['tuned_us']:>12.1f} {row['speedup']:>8.4f}")
    lines.append("")
    lines.append(f"{'row-reduce':<14} {'heuristic us':>14} {'tuned us':>12} "
                 f"{'speedup':>8}")
    for row in irregular_rows:
        lines.append(f"{row['shape']:<14} {row['heuristic_us']:>14.1f} "
                     f"{row['tuned_us']:>12.1f} {row['speedup']:>8.4f}")
    lines.append(f"irregular geomean: {irregular_geomean:.4f} "
                 f"(floor {IRREGULAR_GEOMEAN_FLOOR})")
    lines.append("")
    lines.append(f"warm tuned compile / heuristic compile: "
                 f"{warm_ratio:.3f} (ceiling {WARM_COMPILE_CEILING})")
    save_report("BENCH_autotune", "\n".join(lines))
