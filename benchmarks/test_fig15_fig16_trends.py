"""Figures 15 & 16: per-kernel occupancy / SM-efficiency trends.

Paper: ordering memory-intensive kernels by descending execution time,
AStitch's top kernels show higher ``achieved_occupancy`` and
``sm_efficiency`` than XLA's (Fig 15, CRNN) and than Ansor's (Fig 16,
BERT) — and AStitch has far fewer kernels on the axis.
"""

from benchmarks.conftest import compile_cached, save_report
from repro.analysis import render_table
from repro.compilers import AnsorCompiler
from repro.core import AStitchCompiler
from repro.runtime import Engine
from repro.workloads import build


def _trend(profile, top_n=10):
    counters = sorted(profile.mem_counters(), key=lambda c: -c.duration)
    return counters[:top_n]


def _weighted(counters, attr):
    total = sum(c.duration for c in counters)
    return sum(getattr(c, attr) * c.duration for c in counters) / total


def test_fig15_crnn_trend(benchmark, inference_results):
    result = benchmark.pedantic(lambda: inference_results["CRNN"],
                                rounds=1, iterations=1)
    xla = _trend(result.profiles["XLA"])
    astitch = _trend(result.profiles["AStitch"])
    rows = []
    for i in range(max(len(xla), len(astitch))):
        row = [i + 1]
        for series in (xla, astitch):
            if i < len(series):
                row += [f"{series[i].achieved_occupancy:.2f}",
                        f"{series[i].sm_efficiency:.2f}"]
            else:
                row += ["-", "-"]
        rows.append(row)
    from repro.analysis.charts import series_chart
    charts = "\n\n".join([
        series_chart([c.achieved_occupancy for c in xla], height=6,
                     title="XLA occupancy by kernel rank"),
        series_chart([c.achieved_occupancy for c in astitch], height=6,
                     title="AStitch occupancy by kernel rank"),
    ])
    save_report("fig15_crnn_trend", render_table(
        ["rank", "XLA occ", "XLA eff", "AStitch occ", "AStitch eff"],
        rows,
        title="Fig 15: CRNN top kernels by time (paper: AStitch "
              "higher occupancy/efficiency, fewer kernels)")
        + "\n\n" + charts)

    # Time-weighted over the top kernels, AStitch is more parallel.
    assert (_weighted(astitch, "achieved_occupancy")
            > _weighted(xla, "achieved_occupancy"))
    assert (_weighted(astitch, "sm_efficiency")
            >= _weighted(xla, "sm_efficiency") * 0.95)
    # And the kernel axis is much shorter overall.
    assert (result.profiles["AStitch"].mem_kernel_count
            < result.profiles["XLA"].mem_kernel_count / 3)


def test_fig16_bert_trend_vs_ansor(benchmark):
    def compute():
        graph = build("BERT")
        engine = Engine()
        return {
            "Ansor": engine.run(compile_cached(AnsorCompiler(), graph)),
            "AStitch": engine.run(
                compile_cached(AStitchCompiler(), graph)),
        }

    profiles = benchmark.pedantic(compute, rounds=1, iterations=1)
    ansor = _trend(profiles["Ansor"])
    astitch = _trend(profiles["AStitch"])
    rows = []
    for i in range(max(len(ansor), len(astitch))):
        row = [i + 1]
        for series in (ansor, astitch):
            if i < len(series):
                row += [f"{series[i].achieved_occupancy:.2f}",
                        f"{series[i].sm_efficiency:.2f}"]
            else:
                row += ["-", "-"]
        rows.append(row)
    save_report("fig16_bert_trend", render_table(
        ["rank", "Ansor occ", "Ansor eff", "AStitch occ",
         "AStitch eff"], rows,
        title="Fig 16: BERT top kernels by time, Ansor vs AStitch"))

    assert (_weighted(astitch, "achieved_occupancy")
            >= _weighted(ansor, "achieved_occupancy") * 0.95)
    assert (profiles["AStitch"].mem_kernel_count
            < profiles["Ansor"].mem_kernel_count)
