"""Figure 11: end-to-end speedup, normalized to TensorFlow.

Paper (V100): inference — AStitch up to 4.06x / avg 2.37x over TF, up to
2.73x / avg 1.84x over XLA, up to 4.46x / avg 2.47x over TensorRT.
Training — avg 1.34x over TF and 1.30x over XLA (XLA degrades on DIEN).
"""

from benchmarks.conftest import save_report
from repro.analysis import geomean, render_table
from repro.analysis.charts import grouped_bar_chart


def test_fig11a_inference_speedup(benchmark, inference_results):
    results = benchmark.pedantic(lambda: inference_results, rounds=1,
                                 iterations=1)
    rows = []
    for name, result in results.items():
        rows.append([
            name,
            "1.00",
            f"{result.speedup('XLA'):.2f}",
            f"{result.speedup('TensorRT'):.2f}",
            f"{result.speedup('AStitch'):.2f}",
        ])
    vs_tf = [r.speedup("AStitch") for r in results.values()]
    vs_xla = [r.speedup("AStitch", versus="XLA")
              for r in results.values()]
    vs_trt = [r.speedup("AStitch", versus="TensorRT")
              for r in results.values()]
    rows.append(["AStitch avg vs each",
                 f"{geomean(vs_tf):.2f}", f"{geomean(vs_xla):.2f}",
                 f"{geomean(vs_trt):.2f}", "-"])
    chart = grouped_bar_chart(
        {name: {"XLA": result.speedup("XLA"),
                "TensorRT": result.speedup("TensorRT"),
                "AStitch": result.speedup("AStitch")}
         for name, result in results.items()},
        unit="x")
    save_report("fig11a_inference_speedup", render_table(
        ["model", "TF", "XLA", "TensorRT", "AStitch"], rows,
        title="Fig 11a: inference speedup over TensorFlow "
              "(paper: AStitch avg 2.37x vs TF, 1.84x vs XLA, "
              "2.47x vs TensorRT)") + "\n\n" + chart)

    # Shape: AStitch wins on every workload against every baseline.
    for result in results.values():
        assert result.speedup("AStitch") > 1.0
        assert result.speedup("AStitch", versus="XLA") > 1.0
        assert result.speedup("AStitch", versus="TensorRT") > 1.0
    # Magnitude: the average XLA gap lands in the paper's band.
    assert 1.3 < geomean(vs_xla) < 2.6
    assert max(vs_xla) > 1.8


def test_fig11b_training_speedup(benchmark, training_results):
    results = benchmark.pedantic(lambda: training_results, rounds=1,
                                 iterations=1)
    rows = []
    for name, result in results.items():
        assert "TensorRT" not in result.profiles  # no training support
        rows.append([
            name, "1.00",
            f"{result.speedup('XLA'):.2f}",
            f"{result.speedup('AStitch'):.2f}",
        ])
    vs_xla = [r.speedup("AStitch", versus="XLA")
              for r in results.values()]
    save_report("fig11b_training_speedup", render_table(
        ["model", "TF", "XLA", "AStitch"], rows,
        title="Fig 11b: training speedup over TensorFlow "
              "(paper: AStitch avg 1.34x vs TF, 1.30x vs XLA)"))

    for result in results.values():
        assert result.speedup("AStitch") > 1.0
        assert result.speedup("AStitch", versus="XLA") > 1.0


def test_fig11_training_gains_smaller_than_inference(
        benchmark, inference_results, training_results):
    """Sec 6.1.1: training has a lower memory-intensive share, so the
    speedups are smaller than inference for the same models."""
    def gap():
        infer = geomean([
            inference_results[n].speedup("AStitch", versus="XLA")
            for n in training_results])
        train = geomean([
            training_results[n].speedup("AStitch", versus="XLA")
            for n in training_results])
        return infer, train

    infer, train = benchmark.pedantic(gap, rounds=1, iterations=1)
    # Allow a small tolerance: the direction matters, not the gap size.
    assert train <= infer * 1.05
