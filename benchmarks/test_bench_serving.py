"""BENCH: sustainable serving QPS, AStitch vs. an XLA-like baseline.

The paper sells AStitch on inference latency (Sec 2, Sec 6); this bench
turns the per-iteration speedup into the number a serving operator
provisions by.  For Transformer and CRNN — the two latency-critical
inference workloads of Table 2 — it searches the maximum offered QPS a
two-V100 fleet sustains while keeping p99 latency inside a fixed SLO,
under identical seeded load, identical dynamic batching and identical
scheduling for both compilers.  Only the kernels differ.

Recorded to ``BENCH_serving.json`` (repo root and benchmarks/results/)
so the serving-capacity trajectory is tracked from this PR onward.

Acceptance bar asserted here: AStitch sustains *strictly* higher QPS
than the baseline at the fixed p99 SLO on both workloads.
"""

from __future__ import annotations

import json

from repro.compilers import XLACompiler
from repro.core import AStitchCompiler
from repro.gpu.spec import V100
from repro.serving import serving_benchmark

from benchmarks.conftest import REPO_ROOT as ROOT
from benchmarks.conftest import record_bench, save_report

WORKLOADS_UNDER_TEST = ["Transformer", "CRNN"]
SLO_SECONDS = 0.5
DURATION = 5.0


def test_bench_serving():
    """Search sustained QPS per compiler; assert AStitch wins both."""
    payload = serving_benchmark(
        WORKLOADS_UNDER_TEST,
        [XLACompiler(), AStitchCompiler()],
        specs=[V100, V100],
        slo=SLO_SECONDS,
        duration=DURATION,
        seed=0,
    )
    record_bench("serving", payload)

    lines = [f"{'workload':<12} {'XLA QPS':>9} {'AStitch QPS':>12} "
             f"{'gain':>6}   (p99 SLO {SLO_SECONDS * 1e3:.0f} ms, "
             f"2x V100, seed 0)"]
    for workload in WORKLOADS_UNDER_TEST:
        entry = payload["capacity"][workload]
        lines.append(
            f"{workload:<12} {entry['XLA']['sustained_qps']:>9.1f} "
            f"{entry['AStitch']['sustained_qps']:>12.1f} "
            f"{entry['speedup']:>5.2f}x")
    save_report("BENCH_serving", "\n".join(lines))

    for workload in WORKLOADS_UNDER_TEST:
        entry = payload["capacity"][workload]
        baseline_qps = entry["XLA"]["sustained_qps"]
        astitch_qps = entry["AStitch"]["sustained_qps"]
        # The headline claim: strictly higher sustainable load at the
        # same tail-latency SLO, on every workload measured.
        assert astitch_qps > baseline_qps > 0, workload
        # And the winning configuration really met the SLO.
        assert entry["AStitch"]["p99_ms_at_qps"] <= SLO_SECONDS * 1e3
        assert entry["XLA"]["p99_ms_at_qps"] <= SLO_SECONDS * 1e3


def test_bench_serving_speedup_order_of_magnitude():
    """The serving gain should reflect the per-kernel speedups (roughly
    the Fig 11 band, amplified or damped by batching) — not a
    simulation artifact orders of magnitude off."""
    path = ROOT / "BENCH_serving.json"
    payload = json.loads(path.read_text())
    for workload in WORKLOADS_UNDER_TEST:
        speedup = payload["capacity"][workload]["speedup"]
        assert 1.1 < speedup < 10.0, (workload, speedup)
