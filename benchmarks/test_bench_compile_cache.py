"""BENCH: cold vs. warm compilation through the compile cache.

The paper's JIT overhead (Sec 6.4.1, ~90 s on big graphs) is paid "only
once for all following iterations"; the content-addressed cache extends
that amortization across graph objects, sessions and processes.  This
bench measures real wall-clock: compile the five Table 2 workloads
under the four Fig 11 inference compilers with a cold cache, then again
with a warm one, and record both to ``BENCH_compile_cache.json`` (repo
root and ``benchmarks/results/``) so the perf trajectory is tracked
from this PR onward.

Acceptance bar asserted here: warm is at least 5x faster than cold.
"""

from __future__ import annotations

import time

from repro.compilers import (
    TensorFlowCompiler,
    TensorRTCompiler,
    XLACompiler,
)
from repro.core import AStitchCompiler
from repro.gpu.spec import V100
from repro.runtime.compile_cache import CompileCache
from repro.runtime.compile_service import CompileService
from repro.workloads import WORKLOADS, build

from benchmarks.conftest import record_bench, save_report

SPEEDUP_FLOOR = 5.0


def _sweep(service, graphs, compilers) -> tuple[float, list[dict]]:
    """One serial pass over workloads x compilers; per-pair timings."""
    rows = []
    total = 0.0
    for name, graph in graphs.items():
        for compiler in compilers:
            started = time.perf_counter()
            service.compile(graph, compiler, V100)
            elapsed = time.perf_counter() - started
            total += elapsed
            rows.append({"workload": name, "compiler": compiler.name,
                         "seconds": elapsed})
    return total, rows


def test_bench_compile_cache():
    """Cold-vs-warm compile wall time; asserts the >=5x warm speedup."""
    graphs = {name: build(name) for name in WORKLOADS}
    compilers = [TensorFlowCompiler(), XLACompiler(),
                 TensorRTCompiler(), AStitchCompiler()]
    # Inline workers: the measured delta is pure cache effect, not
    # thread-pool overlap.
    service = CompileService(cache=CompileCache(), max_workers=0)

    cold_seconds, cold_rows = _sweep(service, graphs, compilers)
    warm_seconds, warm_rows = _sweep(service, graphs, compilers)
    speedup = cold_seconds / warm_seconds if warm_seconds else float("inf")

    pairs = []
    for cold, warm in zip(cold_rows, warm_rows):
        pairs.append({"workload": cold["workload"],
                      "compiler": cold["compiler"],
                      "cold_seconds": cold["seconds"],
                      "warm_seconds": warm["seconds"]})
    stats = service.cache.stats
    payload = {
        "bench": "compile_cache_cold_vs_warm",
        "device": "V100",
        "pairs": pairs,
        "cold_seconds": cold_seconds,
        "warm_seconds": warm_seconds,
        "speedup": speedup,
        "cache": {"hits": stats.hits, "misses": stats.misses,
                  "evictions": stats.evictions},
    }
    record_bench("compile_cache", payload)

    lines = [f"{'workload':<12} {'compiler':<11} {'cold (ms)':>10} "
             f"{'warm (ms)':>10}"]
    for row in pairs:
        lines.append(f"{row['workload']:<12} {row['compiler']:<11} "
                     f"{row['cold_seconds']*1e3:>10.2f} "
                     f"{row['warm_seconds']*1e3:>10.2f}")
    lines.append(f"total cold {cold_seconds*1e3:.1f} ms, warm "
                 f"{warm_seconds*1e3:.1f} ms -> {speedup:.1f}x")
    save_report("BENCH_compile_cache", "\n".join(lines))

    # Every pair compiled exactly once; the warm pass never compiled.
    assert stats.misses == len(pairs)
    assert stats.hits >= len(pairs)
    assert speedup >= SPEEDUP_FLOOR, (
        f"warm path only {speedup:.1f}x faster than cold "
        f"(floor {SPEEDUP_FLOOR}x)")
